//! Event queues for the discrete-event engine.
//!
//! The engine drains events in a **total order**: ascending `time`, ties
//! broken by ascending `seq` (scheduling order). Because every event
//! carries a unique `seq`, the order is total — so any correct priority
//! queue drains the same stream, and the engine's results are independent
//! of the queue implementation. Two implementations are provided behind
//! the [`SimQueue`] trait (the engine is monomorphized over it, so the
//! hot loop pays no per-event dispatch):
//!
//! * [`HeapQueue`] — the reference `BinaryHeap` (min-heap via reversed
//!   comparator), `O(log n)` per transaction;
//! * [`CalendarQueue`] — a calendar/bucket queue over **packed events**:
//!   the whole event `(time, seq, warp)` lives in one `u128` whose
//!   unsigned order equals the event total order (the `total_cmp` bit
//!   transform of the time in the high 64 bits, then `seq`, then the
//!   warp id — see [`pack_key`]). A bucket is a flat `Vec<u128>`: a push
//!   is one 16-byte append, a bucket sort compares machine words with no
//!   indirection, and a pop reconstructs the time from the key
//!   bit-exactly (the transform is a bijection). There is no per-event
//!   allocation anywhere — buckets, the drain ring and the overflow
//!   rung all recycle their storage across runs via [`CalendarQueue::reset`].
//!
//! The calendar drains **batched**: when the window cursor reaches a
//! non-empty bucket, the whole bucket is swapped into a scratch drain
//! ring and sorted once (descending, minimum at the back); subsequent
//! pops are `Vec::pop` plus a single rung check, instead of a per-pop
//! ladder walk. Bucket boundaries never reorder events — the bucket
//! index is monotone in `time` and the in-bucket sort uses the full
//! packed key — so the drain order is **bit-identical** to the heap's.
//!
//! [`SimQueue::pop_with_hint`] pairs each pop with a conservative lower
//! bound on the next pending time, which the engine's macro-stepper
//! uses as its safety bound: a warp may only be advanced inline while
//! its next event would still be the global minimum.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Maps `f64` to `u64` such that unsigned integer order equals
/// [`f64::total_cmp`] order (the sign-magnitude to two's-complement
/// transform, then a sign-bit flip for unsigned comparison). Bijective;
/// [`time_from_key_bits`] inverts it exactly.
#[inline]
fn time_key_bits(time: f64) -> u64 {
    let mut b = time.to_bits() as i64;
    b ^= (((b >> 63) as u64) >> 1) as i64;
    (b as u64) ^ (1u64 << 63)
}

/// Inverse of [`time_key_bits`]: recovers the exact `f64` bit pattern.
/// (The transform never touches the sign bit, so the same mask that
/// encoded the low bits decodes them.)
#[inline]
fn time_from_key_bits(k: u64) -> f64 {
    let mut b = (k ^ (1u64 << 63)) as i64;
    b ^= (((b >> 63) as u64) >> 1) as i64;
    f64::from_bits(b as u64)
}

/// Packs a whole event into one `u128` whose unsigned order equals the
/// event total order: ascending `total_cmp` time (high 64 bits), then
/// ascending `seq` (middle 32), then the warp id (low 32, never reached
/// as a tiebreak because seqs are unique). `seq` must fit in 32 bits —
/// the engine resets its counter every run and no simulation approaches
/// 2³² scheduled events; [`CalendarQueue::push`] asserts it.
#[inline]
fn pack_key(time: f64, seq: u64, warp: u32) -> u128 {
    ((time_key_bits(time) as u128) << 64) | ((seq as u128) << 32) | warp as u128
}

#[inline]
fn key_warp(key: u128) -> u32 {
    key as u32
}

#[inline]
fn key_time(key: u128) -> f64 {
    time_from_key_bits((key >> 64) as u64)
}

/// The queue interface the engine's hot loop is monomorphized over.
///
/// Contract: `pop` returns `(time, warp)` in ascending `(time, seq)`
/// order; `seq` values are unique, monotonically increasing across
/// pushes, and below `2³²`.
pub trait SimQueue {
    fn push(&mut self, time: f64, seq: u64, warp: u32);
    /// Reference single-event pop; the engine's hot loop uses
    /// [`Self::pop_with_hint`] instead, so this (and `peek_time`) serve
    /// the queue-equivalence tests.
    #[allow(dead_code)]
    fn pop(&mut self) -> Option<(f64, u32)>;
    /// Earliest pending event time, if any. May advance internal
    /// cursors (monotone, amortized against future pops).
    #[allow(dead_code)]
    fn peek_time(&mut self) -> Option<f64>;
    /// Pops the minimum event, returning `(time, warp, next_hint)`.
    /// `next_hint` is a **conservative lower bound** on the next
    /// pending event's time: the exact minimum when it is cheaply
    /// known, `f64::INFINITY` when the queue is now empty, and
    /// `f64::NEG_INFINITY` when an exact answer would cost a cursor
    /// advance (callers treat that as "no headroom"). The engine's
    /// macro-stepper compares candidate wake-ups strictly against this
    /// bound, so an underestimate only forgoes a coalesce — it can
    /// never reorder events.
    fn pop_with_hint(&mut self) -> Option<(f64, u32, f64)>;
}

/// Forwarding impl so a [`crate::core::Simulation`] can borrow a queue
/// from a scratch arena (`Simulation<&mut CalendarQueue>`) instead of
/// owning it.
impl<Q: SimQueue + ?Sized> SimQueue for &mut Q {
    #[inline]
    fn push(&mut self, time: f64, seq: u64, warp: u32) {
        (**self).push(time, seq, warp);
    }
    #[inline]
    fn pop(&mut self) -> Option<(f64, u32)> {
        (**self).pop()
    }
    #[inline]
    fn peek_time(&mut self) -> Option<f64> {
        (**self).peek_time()
    }
    #[inline]
    fn pop_with_hint(&mut self) -> Option<(f64, u32, f64)> {
        (**self).pop_with_hint()
    }
}

/// One pending warp wake-up, as stored by the reference heap.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    warp: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed (time, seq) so `BinaryHeap` acts as a min-heap: the
        // earliest time wins, and at equal times the smallest seq wins.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference min-queue over `(time, seq)`.
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Event>,
}

impl HeapQueue {
    pub fn new() -> Self {
        HeapQueue::default()
    }

    /// Clears the queue for reuse, keeping its allocation.
    pub fn reset(&mut self) {
        self.heap.clear();
    }
}

impl SimQueue for HeapQueue {
    #[inline]
    fn push(&mut self, time: f64, seq: u64, warp: u32) {
        self.heap.push(Event { time, seq, warp });
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, u32)> {
        self.heap.pop().map(|e| (e.time, e.warp))
    }

    #[inline]
    fn peek_time(&mut self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    #[inline]
    fn pop_with_hint(&mut self) -> Option<(f64, u32, f64)> {
        // The heap's minimum is its root: the hint is always exact.
        self.heap.pop().map(|e| {
            let next = self.heap.peek().map_or(f64::INFINITY, |n| n.time);
            (e.time, e.warp, next)
        })
    }
}

/// Number of fixed-width buckets in the calendar window. Power of two so
/// ring indexing is a mask. Sized so the window spans typical scheduling
/// horizons; the engine reuses one calendar per thread (see the engine's
/// scratch), so the ring is allocated once per thread, not per run.
const CALENDAR_BUCKETS: usize = 512;

/// A calendar/bucket event queue over packed `u128` events.
///
/// The window covers `CALENDAR_BUCKETS × width` cycles starting at
/// `base_bucket × width`. Events inside the window append their packed
/// key to the bucket; events beyond it go to the `overflow` rung. When
/// the cursor reaches a non-empty bucket the bucket is swapped into the
/// `drain` ring and sorted once (descending, min at the back); a push
/// landing in the already-drained head bucket binary-searches its slot
/// in the ring so order is preserved. When every in-window bucket
/// drains, the window jumps to the earliest overflow event and the
/// overflow rung is re-dealt — each far-future event is touched once
/// per ladder hop, never per pop.
///
/// An event parked on the rung can come to lie *inside* the window as
/// `base_bucket` advances, while newer pushes land in buckets beyond it
/// — so bucket position alone does not order the rung against the
/// window. Every pop/peek therefore compares the drain-ring minimum
/// with the rung minimum (the rung is kept lazily sorted) and takes the
/// global key minimum, keeping the drain order exactly the heap's. The
/// rung is empty for typical plans, so the check is one branch.
#[derive(Debug)]
pub struct CalendarQueue {
    width: f64,
    /// `1 / width`: bucketing multiplies instead of divides. Any
    /// monotone map from time to bucket index preserves the drain order
    /// (events in a strictly earlier bucket have strictly smaller
    /// times), so the multiply's rounding differences vs division are
    /// harmless.
    inv_width: f64,
    buckets: Vec<Vec<u128>>,
    /// Occupancy bitmap over the bucket ring, one bit per slot: set iff
    /// the bucket is non-empty. The cursor advance finds the next
    /// occupied bucket with `trailing_zeros` over at most eight words
    /// instead of probing empty buckets one by one — with realistic
    /// service times consecutive events skip many buckets, and that
    /// per-pop probe walk dominated the queue's cost.
    occupied: [u64; CALENDAR_BUCKETS / 64],
    /// Absolute bucket index of ring slot `head`.
    base_bucket: u64,
    /// Ring slot holding bucket `base_bucket`.
    head: usize,
    /// Events resident in window buckets (excluding the drain ring).
    in_buckets: usize,
    /// The current head bucket's contents, sorted ascending; the live
    /// region is `drain[drain_pos..]` (popping advances the cursor
    /// instead of shifting memory). Buckets fill in roughly ascending
    /// time order, so the ascending sort runs near-linear on the
    /// already-sorted runs pdqsort detects. Valid only when
    /// `head_drained`.
    drain: Vec<u128>,
    drain_pos: usize,
    /// Whether bucket `base_bucket` has been swapped into `drain`.
    head_drained: bool,
    /// Events past the window at push time (absolute bucket ≥
    /// `base_bucket + CALENDAR_BUCKETS` when pushed).
    overflow: Vec<u128>,
    /// Whether `overflow` is currently sorted descending.
    overflow_sorted: bool,
}

impl CalendarQueue {
    /// Creates a queue with the given bucket width in cycles. Widths are
    /// clamped to a small positive minimum so degenerate specs cannot
    /// produce a zero-width (infinite-bucket-index) calendar.
    pub fn new(width: f64) -> Self {
        let width = clamp_width(width);
        CalendarQueue {
            width,
            inv_width: 1.0 / width,
            buckets: (0..CALENDAR_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; CALENDAR_BUCKETS / 64],
            base_bucket: 0,
            head: 0,
            in_buckets: 0,
            drain: Vec::new(),
            drain_pos: 0,
            head_drained: false,
            overflow: Vec::new(),
            overflow_sorted: true,
        }
    }

    /// Clears the queue for reuse with a (possibly new) bucket width,
    /// keeping every allocation: the bucket ring, the drain ring and
    /// the rung.
    pub fn reset(&mut self, width: f64) {
        let width = clamp_width(width);
        self.width = width;
        self.inv_width = 1.0 / width;
        // After a clean drain every bucket is already empty
        // (`in_buckets` counts bucket residents); only an aborted run
        // (deadlock) leaves stragglers. Skipping the 512-slot sweep on
        // the clean path matters for short simulations, where reset is
        // a visible share of the per-run cost.
        if self.in_buckets != 0 {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
        }
        self.occupied = [0; CALENDAR_BUCKETS / 64];
        self.base_bucket = 0;
        self.head = 0;
        self.in_buckets = 0;
        self.drain.clear();
        self.drain_pos = 0;
        self.head_drained = false;
        self.overflow.clear();
        self.overflow_sorted = true;
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.in_buckets == 0 && self.drain_pos == self.drain.len() && self.overflow.is_empty()
    }

    #[inline]
    fn bucket_of(&self, time: f64) -> u64 {
        // Times are non-negative cycles; casts saturate safely for the
        // magnitudes the engine produces.
        (time * self.inv_width) as u64
    }

    /// Routes one packed event to the drain ring, a window bucket, or
    /// the rung. Shared by [`SimQueue::push`] and the ladder re-deal.
    /// `inline(always)`: a plain hint leaves this as an out-of-line
    /// call on the push path once the engine loop grows.
    #[inline(always)]
    fn place(&mut self, key: u128, time: f64) {
        // Scheduled times never precede the drain cursor, but clamp for
        // float-edge safety so no event can land behind the window.
        let b = self.bucket_of(time).max(self.base_bucket);
        let idx = (b - self.base_bucket) as usize;
        if idx >= CALENDAR_BUCKETS {
            self.overflow.push(key);
            self.overflow_sorted = false;
            return;
        }
        if idx == 0 && self.head_drained {
            // The head bucket already lives in the drain ring: insert
            // into the live (ascending) region so the ring stays
            // sorted. Keys behind the cursor are already popped and
            // strictly smaller, so the search starts at the cursor.
            let pos = self.drain_pos + self.drain[self.drain_pos..].partition_point(|&k| k < key);
            self.drain.insert(pos, key);
            return;
        }
        let ring = (self.head + idx) & (CALENDAR_BUCKETS - 1);
        self.buckets[ring].push(key);
        self.occupied[ring >> 6] |= 1 << (ring & 63);
        self.in_buckets += 1;
    }

    /// Ring distance (0..512) from `head` to the nearest occupied
    /// bucket, scanning the bitmap a word at a time. Requires
    /// `in_buckets > 0`.
    #[inline]
    fn next_occupied_distance(&self) -> usize {
        const WORDS: usize = CALENDAR_BUCKETS / 64;
        let wi = self.head >> 6;
        let bit = self.head & 63;
        let first = self.occupied[wi] >> bit;
        if first != 0 {
            return first.trailing_zeros() as usize;
        }
        for k in 1..=WORDS {
            let w = self.occupied[(wi + k) & (WORDS - 1)];
            if w != 0 {
                // For `k == WORDS` this re-reads `head`'s own word:
                // its bits at or above `bit` were just seen to be
                // clear, so a hit here is a low bit — ring distance
                // still below `CALENDAR_BUCKETS`.
                return (64 - bit) + (k - 1) * 64 + w.trailing_zeros() as usize;
            }
        }
        unreachable!("in_buckets > 0 guarantees an occupied bucket")
    }

    /// Advances the cursor until the drain ring is ready (non-empty),
    /// hopping the overflow ladder when the window is dry. Requires
    /// `len() > 0`.
    fn advance(&mut self) {
        loop {
            if self.drain_pos < self.drain.len() {
                return;
            }
            if self.in_buckets == 0 {
                // Window dry: hop the ladder to the earliest overflow
                // event and re-deal the rung.
                debug_assert!(!self.overflow.is_empty());
                let min_bucket = self
                    .overflow
                    .iter()
                    .map(|&k| self.bucket_of(key_time(k)))
                    .min()
                    .expect("overflow non-empty");
                self.base_bucket = min_bucket;
                self.head = 0;
                self.head_drained = false;
                let pending = std::mem::take(&mut self.overflow);
                self.overflow_sorted = true; // now empty; pushes may refill
                for key in pending {
                    self.place(key, key_time(key));
                }
                continue;
            }
            // Jump the cursor straight to the next occupied bucket
            // (the bitmap guarantees one while `in_buckets > 0`), then
            // swap it into the drain ring and sort it once; pops are
            // then a cursor bump.
            let dist = self.next_occupied_distance();
            self.head = (self.head + dist) & (CALENDAR_BUCKETS - 1);
            self.base_bucket += dist as u64;
            self.drain.clear();
            self.drain_pos = 0;
            std::mem::swap(&mut self.drain, &mut self.buckets[self.head]);
            self.occupied[self.head >> 6] &= !(1 << (self.head & 63));
            self.in_buckets -= self.drain.len();
            self.head_drained = true;
            self.drain.sort_unstable();
            return;
        }
    }

    /// Whether the overflow rung's minimum drains before the drain
    /// ring's minimum. Sorts the rung lazily. Requires a non-empty
    /// drain ring (i.e. call after [`Self::advance`]).
    #[inline]
    fn rung_min_first(&mut self) -> bool {
        if self.overflow.is_empty() {
            return false;
        }
        if !self.overflow_sorted {
            self.overflow.sort_unstable_by(|a, b| b.cmp(a));
            self.overflow_sorted = true;
        }
        match (self.overflow.last(), self.drain.get(self.drain_pos)) {
            (Some(&o), Some(&d)) => o < d,
            _ => unreachable!("rung_min_first called with an empty drain ring"),
        }
    }
}

impl SimQueue for CalendarQueue {
    #[inline(always)]
    fn push(&mut self, time: f64, seq: u64, warp: u32) {
        // The packed layout gives seq 32 bits; see `pack_key`.
        assert!(seq <= u32::MAX as u64, "event seq overflows packed key");
        self.place(pack_key(time, seq, warp), time);
    }

    fn pop(&mut self) -> Option<(f64, u32)> {
        self.pop_with_hint().map(|(time, warp, _)| (time, warp))
    }

    #[inline]
    fn peek_time(&mut self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        self.advance();
        let key = if self.rung_min_first() {
            *self.overflow.last().expect("rung min exists")
        } else {
            self.drain[self.drain_pos]
        };
        Some(key_time(key))
    }

    #[inline(always)]
    fn pop_with_hint(&mut self) -> Option<(f64, u32, f64)> {
        // Fast path — the overwhelmingly common transaction: the drain
        // ring has the minimum and the rung is empty. One combined
        // branch guards it, and the bounds checks below are dominated
        // by the guard, so the whole path is a handful of loads.
        let pos = self.drain_pos;
        if pos < self.drain.len() && self.overflow.is_empty() {
            let key = self.drain[pos];
            self.drain_pos = pos + 1;
            let hint = if pos + 1 < self.drain.len() {
                key_time(self.drain[pos + 1])
            } else if self.in_buckets > 0 {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
            return Some((key_time(key), key_warp(key), hint));
        }
        self.pop_slow()
    }
}

impl CalendarQueue {
    /// The out-of-line remainder of [`SimQueue::pop_with_hint`]: drain
    /// ring exhausted (cursor advance / ladder hop needed) or a
    /// non-empty overflow rung to arbitrate against.
    #[cold]
    fn pop_slow(&mut self) -> Option<(f64, u32, f64)> {
        if self.is_empty() {
            return None;
        }
        self.advance();
        let key = if self.rung_min_first() {
            self.overflow.pop().expect("rung min exists")
        } else {
            let key = self.drain[self.drain_pos];
            self.drain_pos += 1;
            key
        };
        // The hint: exact whenever the answer is already at hand (the
        // drain ring still holds events, or only the — sorted — rung
        // remains), `NEG_INFINITY` when finding it would mean scanning
        // buckets (the next pop pays that scan exactly once either way).
        let hint = match self.drain.get(self.drain_pos) {
            Some(&d) => {
                // `rung_min_first` above sorted a non-empty rung.
                match self.overflow.last() {
                    Some(&o) => key_time(d.min(o)),
                    None => key_time(d),
                }
            }
            None if self.in_buckets > 0 => f64::NEG_INFINITY,
            None => match self.overflow.last() {
                Some(&o) => key_time(o),
                None => f64::INFINITY,
            },
        };
        Some((key_time(key), key_warp(key), hint))
    }
}

#[inline]
fn clamp_width(width: f64) -> f64 {
    if width.is_finite() && width > 1e-9 {
        width
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(q: &mut impl SimQueue, time: f64, seq: u64) {
        // Tests tag each event's payload (warp) with its seq so drain
        // order is observable through the returned warp ids.
        q.push(time, seq, seq as u32);
    }

    fn pop_seq(q: &mut impl SimQueue) -> Option<u64> {
        q.pop().map(|(_, warp)| warp as u64)
    }

    #[test]
    fn packed_key_order_matches_time_then_seq() {
        let samples = [0.0, 1.0, 1.5, 1e7, f64::MAX];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    time_key_bits(a).cmp(&time_key_bits(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
                // The transform is a bijection: times survive a pack /
                // unpack round trip bit-exactly.
                assert_eq!(time_from_key_bits(time_key_bits(a)).to_bits(), a.to_bits());
            }
        }
        assert!(pack_key(1.0, 5, 9) < pack_key(1.0, 6, 0));
        assert!(pack_key(1.0, 6, 0) < pack_key(2.0, 0, 0));
        assert_eq!(key_warp(pack_key(3.5, 7, 42)), 42);
        assert_eq!(key_time(pack_key(3.5, 7, 42)), 3.5);
    }

    /// Pins the event total order: ascending time, ties broken by
    /// ascending seq (scheduling order). The calendar queue's drain
    /// order is specified to be exactly this.
    #[test]
    fn event_order_is_time_then_seq() {
        let mut heap = HeapQueue::new();
        for (time, seq) in [(5.0, 4), (1.0, 3), (5.0, 1), (1.0, 7), (0.0, 9)] {
            push(&mut heap, time, seq);
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|(time, warp)| (time as u64, warp as u64))
            .collect();
        assert_eq!(order, [(0, 9), (1, 3), (1, 7), (5, 1), (5, 4)]);
    }

    #[test]
    fn calendar_matches_heap_on_random_stream() {
        // Deterministic pseudo-random interleaving of pushes and pops.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new(2.0);
        let mut seq = 0u64;
        let mut cursor = 0.0f64; // pops never go backwards in time
        for _ in 0..20_000 {
            let r = next();
            if r % 5 < 3 {
                // Push at cursor + jittered offset; occasionally far
                // future so the overflow ladder engages.
                let off = if r % 97 == 0 {
                    (r % 100_000) as f64
                } else if r % 89 == 0 {
                    // Straddles the window edge (512 × 2.0 cycles), so
                    // rung events later fall inside the sliding window.
                    (r % 8_192) as f64
                } else {
                    (r % 512) as f64 * 0.25
                };
                seq += 1;
                push(&mut heap, cursor + off, seq);
                push(&mut cal, cursor + off, seq);
            } else {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(
                    a.map(|(t, w)| (t.to_bits(), w)),
                    b.map(|(t, w)| (t.to_bits(), w))
                );
                if let Some((t, _)) = a {
                    cursor = t;
                }
            }
        }
        // Drain the rest: identical tails.
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(
                a.map(|(t, w)| (t.to_bits(), w)),
                b.map(|(t, w)| (t.to_bits(), w))
            );
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_handles_ties_in_one_bucket() {
        let mut cal = CalendarQueue::new(4.0);
        push(&mut cal, 8.0, 2);
        push(&mut cal, 8.0, 1);
        push(&mut cal, 9.0, 3);
        assert_eq!(cal.peek_time(), Some(8.0));
        // Insert into the already-drained head bucket: order holds.
        push(&mut cal, 8.5, 4);
        let seqs: Vec<u64> = std::iter::from_fn(|| pop_seq(&mut cal)).collect();
        assert_eq!(seqs, [1, 2, 4, 3]);
    }

    #[test]
    fn overflow_ladder_promotes_far_future_events() {
        let mut cal = CalendarQueue::new(1.0);
        // Far beyond the window: lands on the overflow rung.
        push(&mut cal, 1e7, 1);
        push(&mut cal, 1e7 + 0.5, 2);
        push(&mut cal, 3.0, 3);
        assert_eq!(pop_seq(&mut cal), Some(3));
        assert_eq!(cal.peek_time(), Some(1e7));
        assert_eq!(pop_seq(&mut cal), Some(1));
        assert_eq!(pop_seq(&mut cal), Some(2));
        assert_eq!(pop_seq(&mut cal), None);
    }

    /// Regression: an event pushed onto the overflow rung stays there
    /// as the window slides over its bucket. A newer in-window event
    /// beyond it must not drain first — pop compares the rung minimum
    /// against the drain ring.
    #[test]
    fn rung_event_inside_window_drains_in_order() {
        let mut cal = CalendarQueue::new(1.0);
        // Bucket 3000 lies beyond the initial window [0, 512): rung.
        push(&mut cal, 3000.0, 1);
        push(&mut cal, 250.0, 2);
        assert_eq!(pop_seq(&mut cal), Some(2));
        // The window can slide over bucket 3000, but seq 1 is still on
        // the rung; this newer push lands in an in-window bucket.
        push(&mut cal, 3100.0, 3);
        assert_eq!(cal.peek_time(), Some(3000.0));
        assert_eq!(pop_seq(&mut cal), Some(1));
        assert_eq!(pop_seq(&mut cal), Some(3));
        assert_eq!(pop_seq(&mut cal), None);
    }

    #[test]
    fn degenerate_width_is_clamped() {
        let mut cal = CalendarQueue::new(0.0);
        push(&mut cal, 10.0, 1);
        assert_eq!(pop_seq(&mut cal), Some(1));
        let mut cal = CalendarQueue::new(f64::NAN);
        push(&mut cal, 2.0, 1);
        push(&mut cal, 1.0, 2);
        assert_eq!(pop_seq(&mut cal), Some(2));
    }

    /// The pop hint is a conservative lower bound: exact when the drain
    /// ring has the answer, `INFINITY` on empty, `NEG_INFINITY` instead
    /// of a bucket scan.
    #[test]
    fn pop_hint_bounds_the_next_event() {
        let mut cal = CalendarQueue::new(2.0);
        push(&mut cal, 1.0, 1);
        push(&mut cal, 1.5, 2); // same bucket: exact hint
        push(&mut cal, 100.0, 3); // far bucket: hidden behind a scan
        let (t, _, hint) = cal.pop_with_hint().unwrap();
        assert_eq!(t, 1.0);
        assert_eq!(hint, 1.5);
        let (t, _, hint) = cal.pop_with_hint().unwrap();
        assert_eq!(t, 1.5);
        assert_eq!(hint, f64::NEG_INFINITY); // bucket scan not paid here
        let (t, _, hint) = cal.pop_with_hint().unwrap();
        assert_eq!(t, 100.0);
        assert_eq!(hint, f64::INFINITY);
        assert!(cal.pop_with_hint().is_none());
    }

    /// Reset clears every region — buckets, drain ring, rung — even
    /// after a partially drained (aborted) run, and keeps the queue
    /// usable with a new width.
    #[test]
    fn reset_recycles_a_partially_drained_queue() {
        let mut cal = CalendarQueue::new(2.0);
        push(&mut cal, 1.0, 1);
        push(&mut cal, 1e7, 2); // rung
        push(&mut cal, 5.0, 3);
        assert_eq!(pop_seq(&mut cal), Some(1)); // leaves drain + rung populated
        cal.reset(4.0);
        assert_eq!(cal.pop(), None);
        push(&mut cal, 2.0, 4);
        push(&mut cal, 1.0, 5);
        assert_eq!(pop_seq(&mut cal), Some(5));
        assert_eq!(pop_seq(&mut cal), Some(4));
        assert_eq!(cal.pop(), None);
    }
}
