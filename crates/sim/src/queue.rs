//! Event queues for the discrete-event engine.
//!
//! The engine drains [`Event`]s in a **total order**: ascending `time`,
//! ties broken by ascending `seq` (scheduling order). Because every event
//! carries a unique `seq`, the order is total — so any correct priority
//! queue drains the same stream, and the engine's results are independent
//! of the queue implementation. Two implementations are provided:
//!
//! * [`HeapQueue`] — the reference `BinaryHeap` (min-heap via reversed
//!   comparator), `O(log n)` per transaction;
//! * [`CalendarQueue`] — a calendar/bucket queue: fixed-width time
//!   buckets over a sliding window, with a sorted-overflow ladder for
//!   far-future events. Pushes are `O(1)` appends; pops scan forward to
//!   the first non-empty bucket and take the minimum of that (small,
//!   lazily sorted) bucket. Bucket boundaries never reorder events —
//!   bucket index is monotone in `time`, and within a bucket the
//!   `(time, seq)` sort applies — so the drain order is **identical**
//!   to the heap's.
//!
//! [`CalendarQueue::peek_time`] exposes the minimum pending time, which
//! the engine's macro-stepper uses as its safety bound: a warp may only
//! be advanced inline while its next event would still be the global
//! minimum.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One pending warp wake-up.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// Cycle at which the warp resumes.
    pub time: f64,
    /// Scheduling sequence number: unique, monotonically increasing.
    /// Breaks ties so that of two events at the same cycle, the one
    /// scheduled *first* is processed first (FCFS among simultaneous
    /// wake-ups).
    pub seq: u64,
    /// Index of the warp to wake.
    pub warp: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed (time, seq) so `BinaryHeap` acts as a min-heap: the
        // earliest time wins, and at equal times the smallest seq wins.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Descending `(time, seq)` comparison, so a `Vec` sorted with it pops
/// its minimum from the back.
#[inline]
fn desc(a: &Event, b: &Event) -> Ordering {
    b.time.total_cmp(&a.time).then_with(|| b.seq.cmp(&a.seq))
}

/// Ascending `(time, seq)` comparison: `Less` means `a` drains first.
#[inline]
fn asc(a: &Event, b: &Event) -> Ordering {
    a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq))
}

/// The reference min-queue over `(time, seq)`.
#[derive(Debug, Default)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Event>,
}

impl HeapQueue {
    pub fn new() -> Self {
        HeapQueue::default()
    }

    #[inline]
    pub fn push(&mut self, ev: Event) {
        self.heap.push(ev);
    }

    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Earliest pending event time, if any.
    #[inline]
    pub fn peek_time(&mut self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

/// Number of fixed-width buckets in the calendar window. Power of two so
/// ring indexing is a mask. Sized so the ring's allocation cost is small
/// relative to a short simulation (the engine builds a fresh queue per
/// run) while the window still spans typical scheduling horizons.
const CALENDAR_BUCKETS: usize = 512;

/// A calendar/bucket event queue with a sorted-overflow ladder.
///
/// The window covers `CALENDAR_BUCKETS × width` cycles starting at
/// `base_bucket × width`. Events inside the window append to their
/// bucket; events beyond it go to the `overflow` rung. The head bucket
/// is sorted (descending, min at the back) lazily on first access; a
/// push into the already-sorted head bucket binary-searches its slot so
/// order is preserved. When every in-window bucket drains, the window
/// jumps to the earliest overflow event and the overflow rung is
/// re-dealt — each far-future event is touched once per ladder hop,
/// never per pop.
///
/// An event parked on the rung can come to lie *inside* the window as
/// `base_bucket` advances, while newer pushes land in buckets beyond it
/// — so bucket position alone does not order the rung against the
/// window. Every pop/peek therefore compares the head-bucket minimum
/// with the rung minimum (the rung is kept lazily sorted) and takes the
/// global `(time, seq)` minimum, keeping the drain order exactly the
/// heap's.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    width: f64,
    buckets: Vec<Vec<Event>>,
    /// Absolute bucket index of ring slot `head`.
    base_bucket: u64,
    /// Ring slot holding bucket `base_bucket`.
    head: usize,
    /// Whether `buckets[head]` is currently sorted descending.
    head_sorted: bool,
    /// Events resident in window buckets.
    in_buckets: usize,
    /// Events past the window at push time (absolute bucket ≥
    /// `base_bucket + CALENDAR_BUCKETS` when pushed).
    overflow: Vec<Event>,
    /// Whether `overflow` is currently sorted descending.
    overflow_sorted: bool,
}

impl CalendarQueue {
    /// Creates a queue with the given bucket width in cycles. Widths are
    /// clamped to a small positive minimum so degenerate specs cannot
    /// produce a zero-width (infinite-bucket-index) calendar.
    pub fn new(width: f64) -> Self {
        let width = if width.is_finite() && width > 1e-9 {
            width
        } else {
            1.0
        };
        CalendarQueue {
            width,
            buckets: (0..CALENDAR_BUCKETS).map(|_| Vec::new()).collect(),
            base_bucket: 0,
            head: 0,
            head_sorted: false,
            in_buckets: 0,
            overflow: Vec::new(),
            overflow_sorted: true,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    #[inline]
    fn bucket_of(&self, time: f64) -> u64 {
        // Times are non-negative cycles; casts saturate safely for the
        // magnitudes the engine produces.
        (time / self.width) as u64
    }

    pub fn push(&mut self, ev: Event) {
        // Scheduled times never precede the drain cursor, but clamp for
        // float-edge safety so no event can land behind the window.
        let b = self.bucket_of(ev.time).max(self.base_bucket);
        let idx = (b - self.base_bucket) as usize;
        if idx >= CALENDAR_BUCKETS {
            self.overflow.push(ev);
            self.overflow_sorted = false;
            return;
        }
        let slot = (self.head + idx) & (CALENDAR_BUCKETS - 1);
        let bucket = &mut self.buckets[slot];
        if idx == 0 && self.head_sorted {
            // Keep the active bucket sorted: insert before the run of
            // strictly-greater events (descending order, min at back).
            let pos = bucket.partition_point(|e| desc(e, &ev) == Ordering::Less);
            bucket.insert(pos, ev);
        } else {
            bucket.push(ev);
        }
        self.in_buckets += 1;
    }

    /// Advances `head` to the first non-empty bucket, pulling from the
    /// overflow ladder when the window is dry. Requires `len() > 0`.
    fn advance(&mut self) {
        loop {
            if self.in_buckets == 0 {
                // Window dry: hop the ladder to the earliest overflow
                // event and re-deal the rung.
                debug_assert!(!self.overflow.is_empty());
                let min_bucket = self
                    .overflow
                    .iter()
                    .map(|e| self.bucket_of(e.time))
                    .min()
                    .expect("overflow non-empty");
                self.base_bucket = min_bucket;
                self.head = 0;
                self.head_sorted = false;
                let pending = std::mem::take(&mut self.overflow);
                self.overflow_sorted = true; // now empty; pushes may refill
                for ev in pending {
                    self.push(ev);
                }
                continue;
            }
            if self.buckets[self.head].is_empty() {
                self.head = (self.head + 1) & (CALENDAR_BUCKETS - 1);
                self.base_bucket += 1;
                self.head_sorted = false;
                continue;
            }
            if !self.head_sorted {
                self.buckets[self.head].sort_unstable_by(desc);
                self.head_sorted = true;
            }
            return;
        }
    }

    /// Whether the overflow rung's minimum drains before the (sorted)
    /// head bucket's minimum. Sorts the rung lazily.
    #[inline]
    fn rung_min_first(&mut self) -> bool {
        if self.overflow.is_empty() {
            return false;
        }
        if !self.overflow_sorted {
            self.overflow.sort_unstable_by(desc);
            self.overflow_sorted = true;
        }
        match (self.overflow.last(), self.buckets[self.head].last()) {
            (Some(o), Some(h)) => asc(o, h) == Ordering::Less,
            _ => unreachable!("rung_min_first called with an empty head bucket"),
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        if self.len() == 0 {
            return None;
        }
        self.advance();
        if self.rung_min_first() {
            return self.overflow.pop();
        }
        let ev = self.buckets[self.head].pop();
        self.in_buckets -= 1;
        ev
    }

    /// Earliest pending event time, if any. May advance the internal
    /// cursor (monotone, amortized against future pops).
    #[inline]
    pub fn peek_time(&mut self) -> Option<f64> {
        if self.len() == 0 {
            return None;
        }
        self.advance();
        if self.rung_min_first() {
            return self.overflow.last().map(|e| e.time);
        }
        self.buckets[self.head].last().map(|e| e.time)
    }
}

/// The engine's queue, selected by [`crate::engine::QueueKind`].
#[derive(Debug)]
pub(crate) enum EventQueue {
    Heap(HeapQueue),
    Calendar(CalendarQueue),
}

impl EventQueue {
    #[inline]
    pub fn push(&mut self, ev: Event) {
        match self {
            EventQueue::Heap(q) => q.push(ev),
            EventQueue::Calendar(q) => q.push(ev),
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Heap(q) => q.pop(),
            EventQueue::Calendar(q) => q.pop(),
        }
    }

    #[inline]
    pub fn peek_time(&mut self) -> Option<f64> {
        match self {
            EventQueue::Heap(q) => q.peek_time(),
            EventQueue::Calendar(q) => q.peek_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, seq: u64) -> Event {
        Event {
            time,
            seq,
            warp: seq as usize,
        }
    }

    /// Pins the event total order: ascending time, ties broken by
    /// ascending seq (scheduling order). The calendar queue's drain
    /// order is specified to be exactly this.
    #[test]
    fn event_order_is_time_then_seq() {
        let mut heap = HeapQueue::new();
        for e in [ev(5.0, 4), ev(1.0, 3), ev(5.0, 1), ev(1.0, 7), ev(0.0, 9)] {
            heap.push(e);
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time as u64, e.seq))
            .collect();
        assert_eq!(order, [(0, 9), (1, 3), (1, 7), (5, 1), (5, 4)]);
    }

    #[test]
    fn calendar_matches_heap_on_random_stream() {
        // Deterministic pseudo-random interleaving of pushes and pops.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new(2.0);
        let mut seq = 0u64;
        let mut cursor = 0.0f64; // pops never go backwards in time
        for _ in 0..20_000 {
            let r = next();
            if r % 5 < 3 {
                // Push at cursor + jittered offset; occasionally far
                // future so the overflow ladder engages.
                let off = if r % 97 == 0 {
                    (r % 100_000) as f64
                } else if r % 89 == 0 {
                    // Straddles the window edge (2048 × 2.0 cycles), so
                    // rung events later fall inside the sliding window.
                    (r % 8_192) as f64
                } else {
                    (r % 512) as f64 * 0.25
                };
                seq += 1;
                let e = ev(cursor + off, seq);
                heap.push(e);
                cal.push(e);
            } else {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(
                    a.map(|e| (e.time.to_bits(), e.seq)),
                    b.map(|e| (e.time.to_bits(), e.seq))
                );
                if let Some(e) = a {
                    cursor = e.time;
                }
            }
        }
        // Drain the rest: identical tails.
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(
                a.map(|e| (e.time.to_bits(), e.seq)),
                b.map(|e| (e.time.to_bits(), e.seq))
            );
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_handles_ties_in_one_bucket() {
        let mut cal = CalendarQueue::new(4.0);
        cal.push(ev(8.0, 2));
        cal.push(ev(8.0, 1));
        cal.push(ev(9.0, 3));
        assert_eq!(cal.peek_time(), Some(8.0));
        // Insert into the now-sorted head bucket: order still holds.
        cal.push(ev(8.5, 4));
        let seqs: Vec<u64> = std::iter::from_fn(|| cal.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, [1, 2, 4, 3]);
    }

    #[test]
    fn overflow_ladder_promotes_far_future_events() {
        let mut cal = CalendarQueue::new(1.0);
        // Far beyond the window: lands on the overflow rung.
        cal.push(ev(1e7, 1));
        cal.push(ev(1e7 + 0.5, 2));
        cal.push(ev(3.0, 3));
        assert_eq!(cal.pop().map(|e| e.seq), Some(3));
        assert_eq!(cal.peek_time(), Some(1e7));
        assert_eq!(cal.pop().map(|e| e.seq), Some(1));
        assert_eq!(cal.pop().map(|e| e.seq), Some(2));
        assert_eq!(cal.pop().map(|e| e.seq), None);
    }

    /// Regression: an event pushed onto the overflow rung stays there
    /// as the window slides over its bucket. A newer in-window event
    /// beyond it must not drain first — pop compares the rung minimum
    /// against the head bucket.
    #[test]
    fn rung_event_inside_window_drains_in_order() {
        let mut cal = CalendarQueue::new(1.0);
        // Bucket 3000 lies beyond the initial window [0, 2048): rung.
        cal.push(ev(3000.0, 1));
        cal.push(ev(1500.0, 2));
        assert_eq!(cal.pop().map(|e| e.seq), Some(2));
        // The window now covers bucket 3000, but seq 1 is still on the
        // rung; this newer push lands in an in-window bucket beyond it.
        cal.push(ev(3100.0, 3));
        assert_eq!(cal.peek_time(), Some(3000.0));
        assert_eq!(cal.pop().map(|e| e.seq), Some(1));
        assert_eq!(cal.pop().map(|e| e.seq), Some(3));
        assert_eq!(cal.pop().map(|e| e.seq), None);
    }

    #[test]
    fn degenerate_width_is_clamped() {
        let mut cal = CalendarQueue::new(0.0);
        cal.push(ev(10.0, 1));
        assert_eq!(cal.pop().map(|e| e.seq), Some(1));
        let mut cal = CalendarQueue::new(f64::NAN);
        cal.push(ev(2.0, 1));
        cal.push(ev(1.0, 2));
        assert_eq!(cal.pop().map(|e| e.seq), Some(2));
    }
}
