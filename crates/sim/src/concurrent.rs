//! Black-box co-running models for the MPS+PTB and Stream+PTB baselines.
//!
//! §VIII-G compares Tacker's deterministic intra-block fusion against
//! running two PTB kernels concurrently through NVIDIA MPS or CUDA streams.
//! On real hardware those schedulers are opaque and *unstable*: sometimes
//! the kernels land on the same SMs and overlap well, sometimes they end up
//! time-sliced. We model that instability explicitly:
//!
//! * the *ideal co-resident* duration comes from a real engine simulation of
//!   both kernels' persistent blocks sharing an SM (resources permitting);
//! * the *serialized* duration is the sum of the solo runs;
//! * the black-box scheduler lands somewhere in between, at a mixing
//!   coefficient drawn deterministically (splitmix64 of the pair) from a
//!   per-interface range — wide and low for MPS, narrower and higher for
//!   streams, exactly the qualitative behaviour Fig. 20 reports.
//!
//! This is a documented substitution for hardware we do not have (see
//! DESIGN.md §1); Tacker's own fusion path never uses it.

use tacker_kernel::{BlockProgram, Cycles, WarpRole};

use crate::engine::simulate;
use crate::error::SimError;
use crate::plan::ExecutablePlan;
use crate::spec::GpuSpec;

/// Which co-running interface to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorunPolicy {
    /// NVIDIA MPS with PTB kernels and extra synchronization.
    MpsPtb,
    /// CUDA streams with PTB kernels and extra synchronization.
    StreamPtb,
    /// An oracle that always achieves the ideal co-resident overlap
    /// (upper bound; used in tests).
    IdealCoResident,
}

impl CorunPolicy {
    /// Mixing-coefficient range `[lo, hi]` between serialized (0) and ideal
    /// co-resident (1) execution.
    fn mix_range(self) -> (f64, f64) {
        match self {
            // MPS scheduling is "pretty poor in many cases" (§VIII-G).
            CorunPolicy::MpsPtb => (0.05, 0.85),
            // Streams are better but "unsatisfying" on several benchmarks.
            CorunPolicy::StreamPtb => (0.35, 0.95),
            CorunPolicy::IdealCoResident => (1.0, 1.0),
        }
    }
}

/// Outcome of a modelled co-run.
#[derive(Debug, Clone, PartialEq)]
pub struct CorunReport {
    /// Solo duration of the first kernel, cycles.
    pub solo_a: Cycles,
    /// Solo duration of the second kernel, cycles.
    pub solo_b: Cycles,
    /// Modelled co-running duration, cycles.
    pub corun: Cycles,
    /// Whether the two kernels' blocks fit on one SM together.
    pub co_resident: bool,
    /// The sampled mixing coefficient.
    pub mix: f64,
}

impl CorunReport {
    /// The paper's overlap-rate metric (Equation 11), in `[0, 0.5]`.
    pub fn overlap_rate(&self) -> f64 {
        let a = self.solo_a.get() as f64;
        let b = self.solo_b.get() as f64;
        let c = self.corun.get() as f64;
        if a + b == 0.0 {
            0.0
        } else {
            ((a + b - c) / (a + b)).clamp(0.0, 0.5)
        }
    }
}

/// splitmix64, used for deterministic per-pair jitter without a rand
/// dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds the merged co-resident plan: one "super block" per SM containing
/// both kernels' block roles side by side, issued as a persistent wave
/// (both components are PTB kernels in the §VIII-G experiment) so each
/// role spreads its original grid over every resident block.
fn merged_plan(spec: &GpuSpec, a: &ExecutablePlan, b: &ExecutablePlan) -> ExecutablePlan {
    let mut roles: Vec<WarpRole> = Vec::new();
    let mut remap = |prefix: &str, src: &ExecutablePlan, barrier_base: u16| {
        for role in &src.block.roles {
            let mut program = role.program.clone();
            for op in &mut program.ops {
                if let tacker_kernel::Op::Barrier { id } = op {
                    *id += barrier_base;
                }
            }
            roles.push(WarpRole {
                name: format!("{prefix}:{}", role.name).into(),
                warps: role.warps,
                program,
                original_blocks: role.original_blocks,
            });
        }
    };
    remap("A", a, 0);
    // Offset B's barrier ids past A's to keep the branches independent.
    let max_a = a
        .block
        .barriers
        .iter()
        .map(|b| b.id)
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    remap("B", b, max_a);
    let block = BlockProgram::new(roles);
    let threads = block.threads();
    let resources = a.resources.fuse_with(&b.resources);
    let occupancy = spec.sm.blocks_per_sm(&resources, threads).max(1) as u64;
    ExecutablePlan::assemble(
        format!("{}+{}", a.name, b.name),
        false,
        block,
        occupancy * spec.sm_count as u64,
        resources,
        threads,
        None,
    )
}

/// Models co-running two prepared plans under the given interface.
///
/// `seed` perturbs the per-pair jitter so repeated experiments can observe
/// the interface's instability.
///
/// # Errors
///
/// Propagates simulation errors from the solo runs.
pub fn corun(
    spec: &GpuSpec,
    a: &ExecutablePlan,
    b: &ExecutablePlan,
    policy: CorunPolicy,
    seed: u64,
) -> Result<CorunReport, SimError> {
    let solo_a = simulate(spec, a)?.cycles;
    let solo_b = simulate(spec, b)?.cycles;
    let serialized = solo_a + solo_b;

    let merged = merged_plan(spec, a, b);
    let co_resident = merged.occupancy(spec) > 0;
    let ideal = if co_resident {
        simulate(spec, &merged)?.cycles
    } else {
        serialized
    };

    let (lo, hi) = policy.mix_range();
    let h = splitmix64(
        seed ^ splitmix64(a.name.len() as u64 ^ (b.name.len() as u64) << 32)
            ^ a.name
                .bytes()
                .fold(0u64, |acc, c| acc.rotate_left(7) ^ c as u64)
            ^ b.name
                .bytes()
                .fold(0u64, |acc, c| acc.rotate_left(11) ^ c as u64),
    );
    let mix = lo + (hi - lo) * unit_f64(h);
    let corun_cycles =
        serialized.get() as f64 - mix * (serialized.get() as f64 - ideal.get() as f64).max(0.0);
    Ok(CorunReport {
        solo_a,
        solo_b,
        corun: Cycles::new(corun_cycles.round() as u64),
        co_resident,
        mix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::ast::ComputeUnit;
    use tacker_kernel::{Op, ResourceUsage, WarpProgram};

    fn plan(name: &str, unit: ComputeUnit, ops: u64, smem: u64) -> ExecutablePlan {
        let block = BlockProgram::new(vec![WarpRole {
            name: name.into(),
            warps: 4,
            program: WarpProgram::new(vec![Op::Compute { unit, ops }]),
            original_blocks: 68,
        }]);
        let threads = block.threads();
        ExecutablePlan::assemble(
            name,
            false,
            block,
            68,
            ResourceUsage::new(32, smem),
            threads,
            None,
        )
    }

    #[test]
    fn ideal_corun_overlaps_heterogeneous_kernels() {
        let spec = GpuSpec::rtx2080ti();
        let a = plan("tc", ComputeUnit::Tensor, 512_000, 0);
        let b = plan("cd", ComputeUnit::Cuda, 64_000, 0);
        let r = corun(&spec, &a, &b, CorunPolicy::IdealCoResident, 1).unwrap();
        assert!(r.co_resident);
        assert!(r.overlap_rate() > 0.3, "overlap {}", r.overlap_rate());
    }

    #[test]
    fn black_box_interfaces_are_worse_than_ideal() {
        let spec = GpuSpec::rtx2080ti();
        let a = plan("tc", ComputeUnit::Tensor, 512_000, 0);
        let b = plan("cd", ComputeUnit::Cuda, 64_000, 0);
        let ideal = corun(&spec, &a, &b, CorunPolicy::IdealCoResident, 7).unwrap();
        let mps = corun(&spec, &a, &b, CorunPolicy::MpsPtb, 7).unwrap();
        let stream = corun(&spec, &a, &b, CorunPolicy::StreamPtb, 7).unwrap();
        assert!(mps.overlap_rate() <= ideal.overlap_rate() + 1e-9);
        assert!(stream.overlap_rate() <= ideal.overlap_rate() + 1e-9);
    }

    #[test]
    fn non_co_resident_pairs_serialize() {
        let spec = GpuSpec::rtx2080ti();
        // Each kernel uses 40 KB smem: together 80 KB > 64 KB → cannot share.
        let a = plan("tc", ComputeUnit::Tensor, 512_000, 40 * 1024);
        let b = plan("cd", ComputeUnit::Cuda, 64_000, 40 * 1024);
        let r = corun(&spec, &a, &b, CorunPolicy::IdealCoResident, 3).unwrap();
        assert!(!r.co_resident);
        assert_eq!(r.corun, r.solo_a + r.solo_b);
        assert!(r.overlap_rate() < 1e-9);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let spec = GpuSpec::rtx2080ti();
        let a = plan("tc", ComputeUnit::Tensor, 512_000, 0);
        let b = plan("cd", ComputeUnit::Cuda, 64_000, 0);
        let r1 = corun(&spec, &a, &b, CorunPolicy::MpsPtb, 42).unwrap();
        let r2 = corun(&spec, &a, &b, CorunPolicy::MpsPtb, 42).unwrap();
        let r3 = corun(&spec, &a, &b, CorunPolicy::MpsPtb, 43).unwrap();
        assert_eq!(r1, r2);
        assert_ne!(r1.mix, r3.mix);
    }
}
