//! GPU power estimation (§V-D).
//!
//! The paper measures (via `nvidia-smi`) that a 2080Ti or V100 already sits
//! at its board power limit while running a single Tensor-Core kernel, and
//! that activating the CUDA Cores simultaneously keeps it pinned there —
//! i.e. kernel fusion costs no additional power. This module reproduces
//! that observation with a simple utilization-linear model capped at the
//! board TDP: dynamic power scales with pipeline and DRAM activity, and the
//! cap binds as soon as the Tensor pipeline is well utilized.

use tacker_kernel::Cycles;

use crate::result::KernelRun;
use crate::spec::GpuSpec;

/// A utilization-linear power model with a board TDP cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Idle board power, watts.
    pub idle_w: f64,
    /// Power at full Tensor-pipeline utilization, watts (added to idle).
    pub tc_full_w: f64,
    /// Power at full CUDA-pipeline utilization, watts (added to idle).
    pub cd_full_w: f64,
    /// Power at full DRAM-bandwidth utilization, watts (added to idle).
    pub dram_full_w: f64,
    /// Board power limit, watts.
    pub tdp_w: f64,
}

impl PowerModel {
    /// RTX 2080Ti: 260 W board limit.
    pub const RTX2080TI: PowerModel = PowerModel {
        idle_w: 55.0,
        tc_full_w: 230.0,
        cd_full_w: 150.0,
        dram_full_w: 60.0,
        tdp_w: 260.0,
    };

    /// V100 (SXM2): 300 W board limit.
    pub const V100: PowerModel = PowerModel {
        idle_w: 60.0,
        tc_full_w: 270.0,
        cd_full_w: 170.0,
        dram_full_w: 70.0,
        tdp_w: 300.0,
    };

    /// The model matching a device spec.
    pub fn for_spec(spec: &GpuSpec) -> PowerModel {
        if spec.name.contains("V100") {
            PowerModel::V100
        } else {
            PowerModel::RTX2080TI
        }
    }

    /// Estimated average board power over a kernel run, watts (TDP-capped,
    /// as the silicon's power limiter enforces).
    pub fn estimate(&self, spec: &GpuSpec, run: &KernelRun) -> f64 {
        if run.cycles == Cycles::ZERO {
            return self.idle_w;
        }
        let dur = run.cycles.get() as f64;
        let tc_util = run.activity.tc_busy.get() as f64 / dur;
        let cd_util = run.activity.cd_busy.get() as f64 / dur;
        let dram_util =
            (run.dram_bytes * spec.sm_count as f64) / (spec.dram_bytes_per_cycle * dur).max(1.0);
        let raw = self.idle_w
            + tc_util * self.tc_full_w
            + cd_util * self.cd_full_w
            + dram_util.min(1.0) * self.dram_full_w;
        raw.min(self.tdp_w)
    }

    /// Whether a run sits at the board power limit.
    pub fn at_limit(&self, spec: &GpuSpec, run: &KernelRun) -> bool {
        self.estimate(spec, run) >= self.tdp_w - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::plan::ExecutablePlan;
    use tacker_kernel::ast::ComputeUnit;
    use tacker_kernel::{BlockProgram, Op, ResourceUsage, WarpProgram, WarpRole};

    fn run_of(unit: ComputeUnit, warps: u32, ops: u64) -> (GpuSpec, KernelRun) {
        let spec = GpuSpec::rtx2080ti();
        let block = BlockProgram::new(vec![WarpRole {
            name: "w".into(),
            warps,
            program: WarpProgram::new(vec![Op::Compute { unit, ops }]),
            original_blocks: 68 * 4,
        }]);
        let threads = block.threads();
        let plan = ExecutablePlan::assemble(
            "p",
            false,
            block,
            68 * 4,
            ResourceUsage::new(32, 0),
            threads,
            None,
        );
        let run = simulate(&spec, &plan).expect("runs");
        (spec, run)
    }

    #[test]
    fn single_tc_kernel_hits_the_power_limit() {
        // §V-D: "the power of a GPU already achieves the peak power limit
        // when the GPU runs a single TC kernel".
        let (spec, run) = run_of(ComputeUnit::Tensor, 8, 500_000);
        let model = PowerModel::for_spec(&spec);
        assert!(
            model.at_limit(&spec, &run),
            "estimated {} W",
            model.estimate(&spec, &run)
        );
    }

    #[test]
    fn fused_kernel_stays_at_the_limit() {
        // "When the CUDA Cores and Tensor Cores are active simultaneously,
        // the power stays at the peak."
        let spec = GpuSpec::rtx2080ti();
        let block = BlockProgram::new(vec![
            WarpRole {
                name: "tc".into(),
                warps: 4,
                program: WarpProgram::new(vec![Op::Compute {
                    unit: ComputeUnit::Tensor,
                    ops: 500_000,
                }]),
                original_blocks: 68 * 4,
            },
            WarpRole {
                name: "cd".into(),
                warps: 4,
                program: WarpProgram::new(vec![Op::Compute {
                    unit: ComputeUnit::Cuda,
                    ops: 62_500,
                }]),
                original_blocks: 68 * 4,
            },
        ]);
        let threads = block.threads();
        let plan = ExecutablePlan::assemble(
            "fused",
            false,
            block,
            68 * 4,
            ResourceUsage::new(32, 0),
            threads,
            None,
        );
        let run = simulate(&spec, &plan).expect("runs");
        let model = PowerModel::for_spec(&spec);
        let est = model.estimate(&spec, &run);
        assert!((est - model.tdp_w).abs() < 1e-9, "estimated {est} W");
    }

    #[test]
    fn light_kernels_stay_below_the_limit() {
        let (spec, run) = run_of(ComputeUnit::Cuda, 1, 1_000);
        let model = PowerModel::for_spec(&spec);
        let est = model.estimate(&spec, &run);
        assert!(est < model.tdp_w, "estimated {est} W");
        assert!(est >= model.idle_w);
    }

    #[test]
    fn spec_dispatch() {
        assert_eq!(PowerModel::for_spec(&GpuSpec::v100()), PowerModel::V100);
        assert_eq!(
            PowerModel::for_spec(&GpuSpec::rtx2080ti()),
            PowerModel::RTX2080TI
        );
    }
}
