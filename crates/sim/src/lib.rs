//! Discrete-event GPU simulator for the Tacker reproduction.
//!
//! The paper evaluates on real NVIDIA GPUs; this crate is the synthetic
//! substrate that stands in for them. It models the parts of the machine
//! that Tacker's phenomena depend on:
//!
//! * **two independent compute pipelines per SM** (Tensor Cores and CUDA
//!   Cores) — the resource pair whose parallelism kernel fusion exploits;
//! * **warp-level execution with deterministic switching**: warps of a
//!   thread block interleave on memory waits and barriers, so a fused block
//!   with heterogeneous warps keeps both pipelines busy at once (Fig. 12);
//! * **explicit occupancy**: resident blocks per SM limited by threads,
//!   registers, shared memory, block slots and named barriers — what makes
//!   naive 1:1 fusion collapse (§V-C);
//! * **a shared memory system** (L1 per SM, DRAM bandwidth shared across
//!   SMs) producing the implicit contention that penalizes memory-intensive
//!   co-location;
//! * **named barriers** with partial-arrival semantics, so `__syncthreads()`
//!   kept inside one branch of a fused kernel deadlocks, exactly as §V-D
//!   warns, while rewritten `bar.sync id, cnt` barriers work.
//!
//! The top-level entry points are [`Device::run_plan`] for executing a single
//! [`ExecutablePlan`] (with memoization) and [`timeline::TimelineRecorder`]
//! for building device-level activity traces (Figs. 1, 2, 15).

pub(crate) mod compile;
pub mod concurrent;
pub mod core;
pub mod device;
pub mod engine;
pub mod error;
pub mod perturb;
pub mod plan;
pub mod power;
pub mod queue;
pub mod result;
pub mod spec;
pub mod timeline;

pub use concurrent::{corun, CorunPolicy, CorunReport};
pub use device::{Device, DeviceComponent};
pub use engine::{
    simulate, simulate_traced, simulate_with_active_sms, simulate_with_options, EngineOptions,
    QueueKind,
};
pub use error::SimError;
pub use perturb::scale_run;
pub use plan::ExecutablePlan;
pub use power::PowerModel;
pub use result::{ActivitySummary, Interval, KernelRun, RunSummary};
pub use spec::GpuSpec;
pub use timeline::{TimelineEntry, TimelineRecorder};
