//! Device façade: plan building, execution and memoization.
//!
//! Co-location experiments replay the same kernels thousands of times
//! (every LC query runs the same layer sequence), so the device memoizes
//! [`KernelRun`] results by launch fingerprint. Simulation is deterministic,
//! which makes memoization exact rather than approximate.
//!
//! The cache is striped across [`CACHE_SHARDS`] independently locked maps
//! so concurrent sweep workers (see `tacker-par`) do not serialize on one
//! global mutex: a worker simulating pair A and a worker simulating pair B
//! almost always touch different shards. Hit/miss counters are plain
//! atomics for the same reason. Sharding never changes *results* — every
//! fingerprint maps to exactly one shard, and simulation is pure, so a
//! racing double-miss simply computes the same `KernelRun` twice and
//! stores it once.
//!
//! Results are stored and returned as `Arc<KernelRun>`: a cache hit is a
//! refcount bump, never a deep copy of the run's interval and role
//! vectors. Shared runs are immutable by construction — consumers that
//! need a perturbed copy (`scale_run`) derive a fresh owned value.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tacker_kernel::KernelLaunch;

use crate::engine::simulate;
use crate::error::SimError;
use crate::plan::ExecutablePlan;
use crate::result::KernelRun;
use crate::spec::GpuSpec;

/// Number of independently locked cache stripes. A power of two so shard
/// selection is a mask; 16 stripes keep the expected contention between
/// any two concurrent workers under 7% even before accounting for the
/// short critical sections.
pub const CACHE_SHARDS: usize = 16;

/// A simulated GPU with a sharded execution cache.
#[derive(Debug)]
pub struct Device {
    spec: GpuSpec,
    shards: Vec<Mutex<HashMap<u64, Arc<KernelRun>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Hit/miss counters restricted to fused-kernel plans. Fused launches
    /// are the reuse the content-derived `KernelId`s were built for, so
    /// they are accounted separately from plain kernels.
    fused_hits: AtomicU64,
    fused_misses: AtomicU64,
}

impl Device {
    /// Creates a device from a spec.
    pub fn new(spec: GpuSpec) -> Device {
        Device {
            spec,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fused_hits: AtomicU64::new(0),
            fused_misses: AtomicU64::new(0),
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The cache stripe responsible for a fingerprint. Fingerprints are
    /// already well-mixed hashes, so the low bits select the shard.
    fn shard(&self, fp: u64) -> &Mutex<HashMap<u64, Arc<KernelRun>>> {
        &self.shards[(fp as usize) & (CACHE_SHARDS - 1)]
    }

    /// Executes a plain kernel launch (lower → plan → simulate), memoized.
    /// The returned handle shares the cached run — a repeat launch costs
    /// a refcount bump, not a copy.
    ///
    /// # Errors
    ///
    /// Propagates plan construction and simulation errors.
    pub fn run_launch(&self, launch: &KernelLaunch) -> Result<Arc<KernelRun>, SimError> {
        let plan = ExecutablePlan::from_launch(&self.spec, launch)?;
        self.run_plan(&plan)
    }

    /// Executes a prepared plan, memoized when the plan has a fingerprint.
    /// Hits return the shared cached run (refcount bump, zero copy).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors. Failures are not cached.
    pub fn run_plan(&self, plan: &ExecutablePlan) -> Result<Arc<KernelRun>, SimError> {
        if let Some(fp) = plan.fingerprint {
            if let Some(hit) = self.shard(fp).lock().expect("cache poisoned").get(&fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if plan.fused {
                    self.fused_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(Arc::clone(hit));
            }
        }
        let run = Arc::new(simulate(&self.spec, plan)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if plan.fused {
            self.fused_misses.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(fp) = plan.fingerprint {
            self.shard(fp)
                .lock()
                .expect("cache poisoned")
                .insert(fp, Arc::clone(&run));
        }
        Ok(run)
    }

    /// (cache hits, cache misses) so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Fraction of lookups served from the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let (hits, misses) = self.cache_stats();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// (cache hits, cache misses) so far for fused-kernel plans only.
    pub fn fused_cache_stats(&self) -> (u64, u64) {
        (
            self.fused_hits.load(Ordering::Relaxed),
            self.fused_misses.load(Ordering::Relaxed),
        )
    }

    /// Fraction of fused-plan lookups served from the cache, in `[0, 1]`.
    pub fn fused_cache_hit_rate(&self) -> f64 {
        let (hits, misses) = self.fused_cache_stats();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Number of memoized kernel runs across all shards.
    pub fn cache_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").len())
            .sum()
    }

    /// Clears the execution cache *and* resets the hit/miss counters
    /// (plain and fused). A cleared device reports provenance as if
    /// freshly constructed — repeated-bench passes that clear between
    /// iterations are not polluted by earlier passes' lookups, and the
    /// next lookup of every plan is a miss that re-simulates.
    ///
    /// Contrast with [`Device::reset_stats`], which zeroes the counters
    /// but keeps every memoized run: use `clear_cache` to force
    /// re-simulation (cold-start benchmarks), `reset_stats` to measure
    /// hit rates over a window while staying warm.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache poisoned").clear();
        }
        self.reset_stats();
    }

    /// Resets the hit/miss counters (plain and fused) without touching
    /// the cached runs themselves: subsequent lookups of already-seen
    /// plans are still hits (refcount bumps), they just count from zero.
    ///
    /// Contrast with [`Device::clear_cache`], which also drops the
    /// memoized runs and therefore forces re-simulation. `reset_stats`
    /// scopes provenance counters to a measurement window; `clear_cache`
    /// restores cold-start behaviour.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.fused_hits.store(0, Ordering::Relaxed);
        self.fused_misses.store(0, Ordering::Relaxed);
    }
}

/// The device as a component on the [`crate::core`] simulation kernel:
/// each event is a launch request whose payload indexes a prepared plan
/// list; the component executes the plan (memoized, like
/// [`Device::run_plan`]) and schedules a completion event for the same
/// payload at the launch's finish time (in cycles).
///
/// Completion events are delivered back to this component (or, on a
/// [`crate::core::Router`], to the destination given at construction)
/// and recorded in [`DeviceComponent::completions`] in retirement
/// order. Simulation failures stop the component from scheduling a
/// completion and are collected in [`DeviceComponent::errors`].
#[derive(Debug)]
pub struct DeviceComponent<'a> {
    device: &'a Device,
    plans: &'a [ExecutablePlan],
    /// High payload bit marking a completion (vs launch-request) event.
    /// Plans are indexed by the low 31 bits, so a component handles up
    /// to 2³¹ distinct plans — far beyond any launch list.
    completion_bit: u32,
    /// `(finish_cycles, plan_index, run)` per retired launch, in
    /// completion order.
    pub completions: Vec<(f64, u32, Arc<KernelRun>)>,
    /// Launches whose simulation failed, with the failure.
    pub errors: Vec<(u32, SimError)>,
}

impl<'a> DeviceComponent<'a> {
    /// A launch component over `device` executing plans from `plans`.
    pub fn new(device: &'a Device, plans: &'a [ExecutablePlan]) -> DeviceComponent<'a> {
        DeviceComponent {
            device,
            plans,
            completion_bit: 1 << 30,
            completions: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// The payload requesting a launch of `plans[index]`.
    pub fn launch_payload(&self, index: u32) -> u32 {
        assert!(index < self.completion_bit, "plan index exceeds payload");
        index
    }
}

impl<'a, Q: crate::queue::SimQueue> crate::core::EventHandler<Q> for DeviceComponent<'a> {
    fn on_event(
        &mut self,
        event: crate::core::Event,
        ctx: &mut crate::core::SimulationContext<'_, Q>,
    ) {
        use crate::core::Schedule;
        if event.payload & self.completion_bit != 0 {
            let index = event.payload & !self.completion_bit;
            let run = self
                .device
                .run_plan(&self.plans[index as usize])
                .expect("completion follows a successful launch");
            self.completions.push((event.time, index, run));
            return;
        }
        match self.device.run_plan(&self.plans[event.payload as usize]) {
            Ok(run) => {
                let finish = event.time + run.cycles.get() as f64;
                ctx.schedule(finish, event.payload | self.completion_bit);
            }
            Err(e) => self.errors.push((event.payload, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tacker_kernel::ast::{Expr, Stmt};
    use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, ResourceUsage};

    fn launch(blocks: u64) -> KernelLaunch {
        let def = KernelDef::builder("d", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 0))
            .body(vec![Stmt::compute_cd(Expr::lit(100), "fma")])
            .build()
            .unwrap();
        KernelLaunch::new(Arc::new(def), blocks, Bindings::new())
    }

    #[test]
    fn memoization_hits_on_repeat() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let l = launch(68);
        let a = dev.run_launch(&l).unwrap();
        let b = dev.run_launch(&l).unwrap();
        assert_eq!(a, b);
        let (hits, misses) = dev.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        assert!((dev.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_grids_are_distinct_entries() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let a = dev.run_launch(&launch(68)).unwrap();
        let b = dev.run_launch(&launch(680)).unwrap();
        assert!(b.cycles > a.cycles);
        let (_, misses) = dev.cache_stats();
        assert_eq!(misses, 2);
        assert_eq!(dev.cache_len(), 2);
    }

    #[test]
    fn plans_without_fingerprints_are_never_cached() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let launch = launch(68);
        let mut plan = crate::plan::ExecutablePlan::from_launch(dev.spec(), &launch).unwrap();
        plan.fingerprint = None;
        dev.run_plan(&plan).unwrap();
        dev.run_plan(&plan).unwrap();
        let (hits, misses) = dev.cache_stats();
        assert_eq!((hits, misses), (0, 2));
        assert_eq!(dev.cache_len(), 0);
    }

    #[test]
    fn clear_cache_forces_resim() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let l = launch(68);
        dev.run_launch(&l).unwrap();
        dev.clear_cache();
        // Counters were reset along with the entries, so only the
        // post-clear re-simulation is visible.
        assert_eq!(dev.cache_stats(), (0, 0));
        dev.run_launch(&l).unwrap();
        let (hits, misses) = dev.cache_stats();
        assert_eq!((hits, misses), (0, 1));
    }

    #[test]
    fn reset_stats_keeps_entries_but_zeroes_counters() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let l = launch(68);
        dev.run_launch(&l).unwrap();
        dev.run_launch(&l).unwrap();
        assert_eq!(dev.cache_stats(), (1, 1));
        dev.reset_stats();
        assert_eq!(dev.cache_stats(), (0, 0));
        assert_eq!(dev.fused_cache_stats(), (0, 0));
        assert_eq!(dev.cache_len(), 1, "entries survive a stats reset");
        // The next lookup is a hit against the surviving entry.
        dev.run_launch(&l).unwrap();
        assert_eq!(dev.cache_stats(), (1, 0));
    }

    #[test]
    fn repeat_hits_share_one_allocation() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let l = launch(68);
        let a = dev.run_launch(&l).unwrap();
        let b = dev.run_launch(&l).unwrap();
        let c = dev.run_launch(&l).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must alias the cached run");
        assert!(Arc::ptr_eq(&b, &c));
    }

    #[test]
    fn entries_spread_across_shards() {
        // Many distinct grids should not all land in one stripe; with 40
        // well-mixed fingerprints the chance of a single stripe holding
        // everything is (1/16)^39 — i.e. this would only fail if shard
        // selection were broken.
        let dev = Device::new(GpuSpec::rtx2080ti());
        for blocks in 1..=40 {
            dev.run_launch(&launch(blocks * 17)).unwrap();
        }
        assert_eq!(dev.cache_len(), 40);
        let populated = dev
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(populated > 1, "all entries landed in one shard");
    }

    #[test]
    fn concurrent_lookups_are_consistent() {
        let dev = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let launches: Vec<KernelLaunch> = (1..=8).map(|b| launch(b * 34)).collect();
        let baseline: Vec<Arc<KernelRun>> = launches
            .iter()
            .map(|l| dev.run_launch(l).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (l, expect) in launches.iter().zip(&baseline) {
                        assert_eq!(&dev.run_launch(l).unwrap(), expect);
                    }
                });
            }
        });
        let (hits, misses) = dev.cache_stats();
        assert_eq!(misses, 8, "every distinct launch simulated once");
        assert_eq!(hits, 8 * 4);
    }
}
