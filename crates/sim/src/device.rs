//! Device façade: plan building, execution and memoization.
//!
//! Co-location experiments replay the same kernels thousands of times
//! (every LC query runs the same layer sequence), so the device memoizes
//! [`KernelRun`] results by launch fingerprint. Simulation is deterministic,
//! which makes memoization exact rather than approximate.

use std::collections::HashMap;
use std::sync::Mutex;

use tacker_kernel::KernelLaunch;

use crate::engine::simulate;
use crate::error::SimError;
use crate::plan::ExecutablePlan;
use crate::result::KernelRun;
use crate::spec::GpuSpec;

/// A simulated GPU with an execution cache.
#[derive(Debug)]
pub struct Device {
    spec: GpuSpec,
    cache: Mutex<HashMap<u64, KernelRun>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl Device {
    /// Creates a device from a spec.
    pub fn new(spec: GpuSpec) -> Device {
        Device {
            spec,
            cache: Mutex::new(HashMap::new()),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Executes a plain kernel launch (lower → plan → simulate), memoized.
    ///
    /// # Errors
    ///
    /// Propagates plan construction and simulation errors.
    pub fn run_launch(&self, launch: &KernelLaunch) -> Result<KernelRun, SimError> {
        let plan = ExecutablePlan::from_launch(&self.spec, launch)?;
        self.run_plan(&plan)
    }

    /// Executes a prepared plan, memoized when the plan has a fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors. Failures are not cached.
    pub fn run_plan(&self, plan: &ExecutablePlan) -> Result<KernelRun, SimError> {
        if let Some(fp) = plan.fingerprint {
            if let Some(hit) = self.cache.lock().expect("cache poisoned").get(&fp) {
                *self.hits.lock().expect("hits poisoned") += 1;
                return Ok(hit.clone());
            }
        }
        let run = simulate(&self.spec, plan)?;
        *self.misses.lock().expect("misses poisoned") += 1;
        if let Some(fp) = plan.fingerprint {
            self.cache
                .lock()
                .expect("cache poisoned")
                .insert(fp, run.clone());
        }
        Ok(run)
    }

    /// (cache hits, cache misses) so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            *self.hits.lock().expect("hits poisoned"),
            *self.misses.lock().expect("misses poisoned"),
        )
    }

    /// Clears the execution cache.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tacker_kernel::ast::{Expr, Stmt};
    use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, ResourceUsage};

    fn launch(blocks: u64) -> KernelLaunch {
        let def = KernelDef::builder("d", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 0))
            .body(vec![Stmt::compute_cd(Expr::lit(100), "fma")])
            .build()
            .unwrap();
        KernelLaunch::new(Arc::new(def), blocks, Bindings::new())
    }

    #[test]
    fn memoization_hits_on_repeat() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let l = launch(68);
        let a = dev.run_launch(&l).unwrap();
        let b = dev.run_launch(&l).unwrap();
        assert_eq!(a, b);
        let (hits, misses) = dev.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn different_grids_are_distinct_entries() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let a = dev.run_launch(&launch(68)).unwrap();
        let b = dev.run_launch(&launch(680)).unwrap();
        assert!(b.cycles > a.cycles);
        let (_, misses) = dev.cache_stats();
        assert_eq!(misses, 2);
    }

    #[test]
    fn plans_without_fingerprints_are_never_cached() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let launch = launch(68);
        let mut plan = crate::plan::ExecutablePlan::from_launch(dev.spec(), &launch).unwrap();
        plan.fingerprint = None;
        dev.run_plan(&plan).unwrap();
        dev.run_plan(&plan).unwrap();
        let (hits, misses) = dev.cache_stats();
        assert_eq!((hits, misses), (0, 2));
    }

    #[test]
    fn clear_cache_forces_resim() {
        let dev = Device::new(GpuSpec::rtx2080ti());
        let l = launch(68);
        dev.run_launch(&l).unwrap();
        dev.clear_cache();
        dev.run_launch(&l).unwrap();
        let (hits, misses) = dev.cache_stats();
        assert_eq!((hits, misses), (0, 2));
    }
}
