//! The discrete-event SM engine, built as components on the
//! [`crate::core`] simulation kernel.
//!
//! The engine simulates one *representative* SM — the busiest one — and
//! derives whole-device behaviour from it. This is accurate for the
//! launches Tacker deals in: grids are distributed round-robin over
//! identical SMs, and PTB kernels issue exactly one persistent wave, so
//! every SM sees (within one block) the same load.
//!
//! Each warp of each resident block is an actor executing its role's
//! [`Op`] sequence. Ops queue on FCFS servers:
//!
//! * the **Tensor pipeline** and the **CUDA pipeline** — the two independent
//!   compute units whose parallel use is the paper's whole point;
//! * the **issue slots** — shared instruction-issue bandwidth that makes
//!   co-resident heterogeneous warps a few percent slower than perfect
//!   overlap;
//! * the **L1/shared/DRAM servers** — bandwidth-limited memory stages, with
//!   the DRAM server fed by this SM's *share* of device bandwidth, so that
//!   memory-intensive kernels contend.
//!
//! Named barriers implement partial-arrival semantics: a barrier releases
//! when its expected warp count (from the lowering pass) arrives. A fused
//! kernel that kept a block-wide `__syncthreads()` therefore deadlocks, and
//! the engine reports it as [`SimError::Deadlock`].
//!
//! # Component structure
//!
//! The engine is three components over one [`Simulation`]:
//!
//! * [`WarpEngine`] — the warp scheduler, the one *hot* component. It
//!   implements [`EventHandler`] generically over the queue, so
//!   event dispatch is monomorphized (zero virtual calls per event), and
//!   it is the component that macro-steps (below).
//! * [`ServerBank`] — the six pipeline servers, each a reusable
//!   [`FcfsServer`].
//! * [`BarrierBoard`] — named-barrier arrival/release state, with a
//!   persistent waiter-vector pool so releases never allocate.
//!
//! Warp wake-ups drain from the kernel's event calendar in `(time, seq)`
//! order — see [`crate::queue`]. Two interchangeable queues are provided
//! ([`QueueKind`]): the reference binary heap and a calendar/bucket queue
//! whose buckets are sized from the spec's issue cost. Both drain the
//! same total order, so results are bit-identical between them.
//!
//! Warp state is stored struct-of-arrays: the per-event execution fields
//! (`pc`/`iters`), the DRAM-stage bytes, the rarely-touched metadata and
//! the finish times live in parallel `Vec`s indexed by the dense warp id
//! — the same id the calendar uses as the event payload. The event
//! handler keeps a register-resident copy of the active warp's execution
//! state and writes it back only at run boundaries. All of that storage,
//! plus the queues themselves, lives in a per-thread scratch arena
//! reused across simulations, so a run allocates only its result; the
//! per-spec micro-op tables come pre-compiled from the plan's cache
//! ([`crate::compile`]).
//!
//! On top of the calendar sits **warp macro-stepping**: after processing
//! a warp's event, if the warp's *next* wake-up time is strictly below
//! the earliest other pending event
//! ([`SimulationContext::inline_bound`]), that wake-up is executed
//! inline instead of being pushed and re-popped — it would have been the
//! very next event anyway, so the collapse is exact, not approximate.
//! Runs end at barriers (which mutate cross-warp state and re-enter
//! through the calendar, per the lowering's run-length metadata), and
//! macro-stepping auto-disables when a trace sink is attached so per-op
//! event streams are identical to the pure event-by-event engine.
//! [`KernelRun::events`] counts *micro*-events (inline continuations
//! included) and is invariant across queue kinds and macro-stepping;
//! [`KernelRun::pops`] counts actual calendar transactions and shrinks
//! as runs coalesce.

use std::cell::RefCell;

use tacker_kernel::Cycles;
use tacker_trace::{Pipeline, ServerKind, TraceEvent, TraceSink};

use crate::compile::{CompiledProgram, MicroOp};
use crate::core::{Event, EventHandler, FcfsServer, Schedule, Simulation, SimulationContext};
use crate::error::SimError;
use crate::plan::ExecutablePlan;
use crate::queue::{CalendarQueue, HeapQueue, SimQueue};
use crate::result::{merge_intervals, ActivitySummary, Interval, KernelRun};
use crate::spec::GpuSpec;

/// Cycles charged for a barrier release.
const BARRIER_COST: f64 = 4.0;

/// Calendar bucket width as a multiple of the spec's per-op issue cost.
/// Wide buckets win twice on this engine's workloads: the whole active
/// window (bounded by warp slots, since each warp has at most one
/// pending event) usually fits in one or two buckets, so nearly every
/// pop is a drain-ring cursor bump instead of a bucket hop, and a full
/// drain ring yields *exact* `pop_with_hint` bounds, which is what lets
/// the macro-stepper coalesce. Measured on the workload kernels
/// (Resnet50/VGG16 query streams and the SPEC-style BE tasks), widths
/// of 256–1024 issue quanta are ~25–40% faster end to end than the
/// narrow widths that aim for one event per bucket; throughput
/// plateaus across that whole range, so the midpoint is pinned here.
const BUCKET_WIDTH_ISSUE_COSTS: f64 = 512.0;

/// Which event-queue implementation the engine drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The reference `BinaryHeap` min-queue.
    Heap,
    /// The calendar/bucket queue (default; same drain order, O(1) pushes).
    #[default]
    Calendar,
}

/// Engine tuning knobs. Results are identical for every combination; the
/// options trade only wall-clock speed (and [`KernelRun::pops`]
/// accounting) — which is what makes the A/B comparison in
/// `engine_bench` meaningful.
///
/// Follows the workspace options idiom: `Default` plus chained `with_*`
/// setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Event-queue implementation.
    pub queue: QueueKind,
    /// Whether warp macro-stepping may coalesce event runs. Forced off
    /// while a trace sink is attached, so traced runs always emit the
    /// full per-event stream.
    pub macro_step: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            queue: QueueKind::Calendar,
            macro_step: true,
        }
    }
}

impl EngineOptions {
    /// Selects the event-queue implementation.
    #[must_use]
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Enables or disables warp macro-stepping.
    #[must_use]
    pub fn with_macro_step(mut self, macro_step: bool) -> Self {
        self.macro_step = macro_step;
        self
    }
}

/// Sentinel `pc` marking a completed warp, so the event handler's
/// staleness guard reads the exec record it already loaded instead of a
/// separate flag array. Real pcs index the compiled micro table, which
/// is always far smaller.
const DONE_PC: u32 = u32::MAX;

/// The per-event execution state of one warp: everything the handler
/// touches on every step, packed in one record so a pop costs a single
/// indexed load (the handler works on a local copy, see
/// [`WarpEngine::on_event`]).
#[derive(Debug, Clone, Copy, Default)]
struct WarpExec {
    /// Current position in the compiled flat micro-op table, or
    /// [`DONE_PC`] once the warp has completed.
    pc: u32,
    /// This warp's role start offset in the flat table.
    pc_start: u32,
    /// One past this warp's role's last op in the flat table.
    pc_end: u32,
    iters_left: u64,
    /// Pending DRAM-stage miss bytes; `> 0.0` means the warp finished
    /// the L1 stage of a global access and owes the DRAM stage.
    dram: f64,
}

/// The rarely-touched warp metadata, kept out of the per-event cache
/// lines.
#[derive(Debug, Clone, Copy, Default)]
struct WarpMeta {
    block: u32,
    role: u16,
}

/// The six FCFS pipeline servers of one SM, each a reusable
/// [`FcfsServer`] component from the simulation core.
#[derive(Debug)]
struct ServerBank {
    tc: FcfsServer,
    cd: FcfsServer,
    issue: FcfsServer,
    l1: FcfsServer,
    shared: FcfsServer,
    dram: FcfsServer,
}

impl ServerBank {
    /// Fresh idle servers; only the two compute pipelines record busy
    /// intervals (for activity summaries), and all six track queue/wait
    /// statistics when tracing.
    fn new(tracing: bool) -> ServerBank {
        ServerBank {
            tc: FcfsServer::new(true, tracing),
            cd: FcfsServer::new(true, tracing),
            issue: FcfsServer::new(false, tracing),
            l1: FcfsServer::new(false, tracing),
            shared: FcfsServer::new(false, tracing),
            dram: FcfsServer::new(false, tracing),
        }
    }
}

/// Named-barrier arrival/release state: arrived counts and parked warp
/// ids, flat-indexed `block × barrier_bound + id`. The waiter-vector
/// pool persists across runs (entries are cleared lazily at block
/// launch) so neither parking nor releasing allocates.
#[derive(Debug, Default)]
struct BarrierBoard {
    arrived: Vec<u32>,
    waiters: Vec<Vec<u32>>,
    /// Active prefix length of `waiters` (blocks × bound).
    len: usize,
    /// Scratch buffer reused across releases so each release does not
    /// allocate (and drop) a fresh waiter list.
    release_scratch: Vec<u32>,
}

impl BarrierBoard {
    fn reset(&mut self) {
        self.arrived.clear();
        self.len = 0;
    }

    /// Claims (and lazily clears) `bound` waiter slots for a newly
    /// launched block from the persistent pool.
    fn claim_block(&mut self, bound: usize) {
        self.arrived.resize(self.arrived.len() + bound, 0);
        for _ in 0..bound {
            if self.len < self.waiters.len() {
                self.waiters[self.len].clear();
            } else {
                self.waiters.push(Vec::new());
            }
            self.len += 1;
        }
    }

    /// Records warp `w` arriving at `slot`. Returns the arrival count
    /// and, when `expected` is met, the full released waiter set
    /// (including `w`) in a recycled buffer — return it via
    /// [`BarrierBoard::recycle`].
    fn arrive(&mut self, slot: usize, w: u32, expected: u32) -> (u32, Option<Vec<u32>>) {
        self.arrived[slot] += 1;
        let arrived_now = self.arrived[slot];
        if arrived_now >= expected {
            self.arrived[slot] = 0;
            // Drain waiters into a reused scratch buffer and keep the
            // (now empty) Vec in the pool, so neither release nor the
            // next parking round allocates.
            let mut waiters = std::mem::take(&mut self.release_scratch);
            waiters.clear();
            waiters.append(&mut self.waiters[slot]);
            waiters.push(w);
            (arrived_now, Some(waiters))
        } else {
            self.waiters[slot].push(w);
            (arrived_now, None)
        }
    }

    /// Returns a release buffer to the scratch slot.
    fn recycle(&mut self, waiters: Vec<u32>) {
        self.release_scratch = waiters;
    }

    /// Barrier ids (mod `bound`) that still hold parked warps — the
    /// deadlock witnesses. Released barriers leave an empty slot; only
    /// barriers with parked warps count as stuck.
    fn stuck(&self, bound: usize) -> Vec<u16> {
        let mut pending: Vec<u16> = self.waiters[..self.len]
            .iter()
            .enumerate()
            .filter(|(_, ws)| !ws.is_empty())
            .map(|(slot, _)| (slot % bound) as u16)
            .collect();
        pending.sort_unstable();
        pending.dedup();
        pending
    }
}

/// Per-thread reusable engine storage: warp/block tables in
/// struct-of-arrays form plus the barrier board. Reused across
/// simulations so a run's setup clears vectors instead of allocating
/// them; see [`EngineScratch`].
#[derive(Debug, Default)]
struct EngineState {
    /// Per warp, indexed by the dense warp id (= calendar event payload).
    warp_exec: Vec<WarpExec>,
    warp_meta: Vec<WarpMeta>,
    warp_finish: Vec<f64>,
    /// Per launched block: global issued-block index and live warps.
    block_index: Vec<u64>,
    block_live: Vec<u32>,
    /// The named-barrier component's state.
    barriers: BarrierBoard,
    /// Remaining assigned issued-block indices not yet launched.
    pending: Vec<u64>,
    role_finish: Vec<f64>,
}

impl EngineState {
    fn reset(&mut self, n_roles: usize) {
        self.warp_exec.clear();
        self.warp_meta.clear();
        self.warp_finish.clear();
        self.block_index.clear();
        self.block_live.clear();
        self.barriers.reset();
        self.pending.clear();
        self.role_finish.clear();
        self.role_finish.resize(n_roles, 0.0);
    }
}

/// One thread's engine arena: the reusable state plus one instance of
/// each queue kind, so switching queue implementations between runs
/// never reallocates the calendar's bucket ring.
#[derive(Debug)]
struct EngineScratch {
    state: EngineState,
    heap: HeapQueue,
    calendar: CalendarQueue,
}

impl Default for EngineScratch {
    fn default() -> Self {
        EngineScratch {
            state: EngineState::default(),
            heap: HeapQueue::new(),
            calendar: CalendarQueue::new(1.0),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::default());
}

/// Iterations of a role's program executed by issued block `b`:
/// the number of original block positions `p < original` with
/// `p % issued == b`.
fn role_iters(original: u64, issued: u64, b: u64) -> u64 {
    if b >= issued || b >= original {
        return 0;
    }
    (original - b - 1) / issued + 1
}

/// The SM warp scheduler: the hot component on the simulation kernel.
/// Owns the warp tables, the [`ServerBank`] and the [`BarrierBoard`];
/// every calendar event is one warp wake-up whose payload is the dense
/// warp id.
struct WarpEngine<'a> {
    spec: &'a GpuSpec,
    plan: &'a ExecutablePlan,
    /// The plan's program compiled against `spec` (cached on the plan).
    prog: &'a CompiledProgram,
    st: &'a mut EngineState,
    servers: ServerBank,
    dram_bytes: f64,
    /// Reciprocal of this SM's DRAM bandwidth share (cycles/byte),
    /// hoisted so the hot loop multiplies instead of divides.
    inv_dram_rate: f64,
    /// Per-op issue occupancy (cycles), hoisted.
    issue_cost: f64,
    /// Inline continuations absorbed by macro-stepping. Micro-events
    /// processed = `pops + coalesced`; that sum is invariant across
    /// queue kinds and macro-stepping.
    coalesced: u64,
    /// Actual calendar pops (heap transactions in the reference engine).
    pops: u64,
    /// Pops whose processing coalesced at least one inline continuation.
    macro_runs: u64,
    /// Macro-stepping active (off under tracing or by options).
    macro_on: bool,
    /// Latest processed instant (pop times and inline continuations).
    last_time: f64,
    sink: &'a dyn TraceSink,
    /// `sink.enabled()` hoisted once at construction so the disabled path
    /// costs a local-bool branch per emission site, never a virtual call.
    tracing: bool,
}

impl<'a> WarpEngine<'a> {
    fn launch_next_block(&mut self, sched: &mut impl Schedule, now: f64) {
        let Some(index) = self.st.pending.pop() else {
            return;
        };
        let start = now + self.spec.block_launch_overhead;
        let block_slot = self.st.block_index.len() as u32;
        let mut live = 0u32;
        for (ri, role) in self.plan.block.roles.iter().enumerate() {
            let iters = role_iters(role.original_blocks, self.plan.issued_blocks, index);
            let (pc0, pc1) = self.prog.role_span[ri];
            for _ in 0..role.warps {
                let wid = self.st.warp_exec.len() as u32;
                let done = iters == 0 || pc0 == pc1;
                self.st.warp_exec.push(WarpExec {
                    pc: if done { DONE_PC } else { pc0 },
                    pc_start: pc0,
                    pc_end: pc1,
                    iters_left: iters,
                    dram: 0.0,
                });
                self.st.warp_meta.push(WarpMeta {
                    block: block_slot,
                    role: ri as u16,
                });
                self.st.warp_finish.push(start);
                if !done {
                    live += 1;
                    sched.schedule(start, wid);
                }
            }
        }
        let bound = self.prog.barrier_expected.len();
        self.st.block_index.push(index);
        self.st.block_live.push(live);
        self.st.barriers.claim_block(bound);
        // A block whose roles all had zero work completes immediately.
        if live == 0 {
            self.launch_next_block(sched, start);
        }
    }

    fn finish_warp(&mut self, sched: &mut impl Schedule, now: f64, w: u32) {
        let wi = w as usize;
        let meta = self.st.warp_meta[wi];
        self.st.warp_exec[wi].pc = DONE_PC;
        self.st.warp_finish[wi] = now;
        let rf = &mut self.st.role_finish[meta.role as usize];
        *rf = rf.max(now);
        let b = meta.block as usize;
        self.st.block_live[b] -= 1;
        if self.st.block_live[b] == 0 {
            self.launch_next_block(sched, now);
        }
    }

    /// Handles a warp arriving at barrier `id`: parks it on the
    /// [`BarrierBoard`], or releases every waiter when the expectation
    /// is met. The arriving warp's stored state must be current (the
    /// event handler writes its local copy back first), because a
    /// release advances every waiter's pc — including the arriver's.
    fn arrive_barrier(&mut self, sched: &mut impl Schedule, now: f64, w: u32, id: u16) {
        let bound = self.prog.barrier_expected.len();
        let expected = self.prog.barrier_expected[id as usize];
        let block = self.st.warp_meta[w as usize].block as usize;
        let slot = block * bound + id as usize;
        let (arrived_now, released) = self.st.barriers.arrive(slot, w, expected);
        if self.tracing {
            self.sink.record(TraceEvent::BarrierArrival {
                kernel: self.plan.name.clone(),
                block: self.st.block_index[block],
                barrier: id,
                arrived: arrived_now,
                expected,
                at_cycles: now,
            });
        }
        if let Some(waiters) = released {
            if self.tracing {
                self.sink.record(TraceEvent::BarrierRelease {
                    kernel: self.plan.name.clone(),
                    block: self.st.block_index[block],
                    barrier: id,
                    released: waiters.len() as u32,
                    at_cycles: now,
                });
            }
            for &wi in &waiters {
                let exec = &mut self.st.warp_exec[wi as usize];
                exec.pc += 1;
                if exec.pc >= exec.pc_end {
                    exec.pc = exec.pc_start;
                    exec.iters_left -= 1;
                }
                sched.schedule(now + BARRIER_COST, wi);
            }
            self.st.barriers.recycle(waiters);
        }
    }

    /// Finishes the run after the calendar drained: deadlock check and
    /// result assembly.
    fn into_run(mut self) -> Result<KernelRun, SimError> {
        let bound = self.prog.barrier_expected.len();
        if self.st.warp_exec.iter().any(|e| e.pc != DONE_PC) {
            let pending = self.st.barriers.stuck(bound);
            if self.tracing {
                self.sink.record(TraceEvent::Deadlock {
                    kernel: self.plan.name.clone(),
                    pending_barriers: pending.clone(),
                    stuck_warps: self.st.warp_exec.iter().filter(|e| e.pc != DONE_PC).count()
                        as u64,
                });
            }
            return Err(SimError::Deadlock {
                kernel: self.plan.name.clone(),
                pending_barriers: pending,
            });
        }
        let makespan = self
            .st
            .warp_finish
            .iter()
            .copied()
            .fold(0.0_f64, f64::max)
            .max(self.last_time)
            + self.spec.kernel_launch_overhead;
        let gap = makespan * 0.005;
        let duration_cycles = Cycles::new(makespan.round() as u64);
        let role_finish = self
            .plan
            .block
            .roles
            .iter()
            .zip(&self.st.role_finish)
            .map(|(r, f)| (r.name.clone(), Cycles::new(f.round() as u64)))
            .collect();
        let tc_intervals = merge_intervals(self.servers.tc.take_intervals(), gap);
        let cd_intervals = merge_intervals(self.servers.cd.take_intervals(), gap);
        let occupancy = self.plan.occupancy(self.spec);
        if self.tracing {
            self.emit_run_events(duration_cycles, occupancy, &tc_intervals, &cd_intervals);
        }
        Ok(KernelRun {
            name: self.plan.name.clone(),
            name_id: self.plan.name_id,
            cycles: duration_cycles,
            duration: self.spec.cycles_to_time(duration_cycles),
            activity: ActivitySummary {
                tc_busy: Cycles::new(self.servers.tc.busy().round() as u64),
                cd_busy: Cycles::new(self.servers.cd.busy().round() as u64),
            },
            tc_intervals,
            cd_intervals,
            role_finish,
            occupancy,
            dram_bytes: self.dram_bytes,
            events: self.pops + self.coalesced,
            pops: self.pops,
            macro_runs: self.macro_runs,
            summary: crate::result::RunSummary::default(),
        }
        .finalized())
    }

    /// Emits the end-of-run event batch: per-pipeline busy intervals,
    /// per-server queue/wait statistics, and the completion summary.
    fn emit_run_events(
        &self,
        cycles: Cycles,
        occupancy: u32,
        tc_intervals: &[Interval],
        cd_intervals: &[Interval],
    ) {
        let name = &self.plan.name;
        for (pipeline, intervals) in [
            (Pipeline::Tensor, tc_intervals),
            (Pipeline::Cuda, cd_intervals),
        ] {
            for iv in intervals {
                self.sink.record(TraceEvent::PipelineInterval {
                    kernel: name.clone(),
                    pipeline,
                    start_cycles: iv.start,
                    end_cycles: iv.end,
                });
            }
        }
        for (kind, server) in [
            (ServerKind::Tensor, &self.servers.tc),
            (ServerKind::Cuda, &self.servers.cd),
            (ServerKind::Issue, &self.servers.issue),
            (ServerKind::L1, &self.servers.l1),
            (ServerKind::Shared, &self.servers.shared),
            (ServerKind::Dram, &self.servers.dram),
        ] {
            self.sink.record(server.stats_event(name, kind));
        }
        self.sink.record(TraceEvent::KernelComplete {
            kernel: name.clone(),
            cycles: cycles.get(),
            tc_busy_cycles: self.servers.tc.busy().round() as u64,
            cd_busy_cycles: self.servers.cd.busy().round() as u64,
            occupancy,
            events: self.pops + self.coalesced,
        });
    }
}

impl<'a, Q: SimQueue> EventHandler<Q> for WarpEngine<'a> {
    /// One warp wake-up (plus any macro-stepped inline continuations).
    #[inline]
    fn on_event(&mut self, event: Event, ctx: &mut SimulationContext<'_, Q>) {
        // Copies of the shared-reference fields and spec scalars. The
        // references are `Copy`, so these locals borrow nothing from
        // `self` — and being immutable borrows, their targets are
        // known not to alias the engine's stores, letting the loads
        // below stay in registers across the coalescing loop.
        let prog = self.prog;
        let micro = prog.micro.as_slice();
        let run_ok = prog.run_ok.as_slice();
        let issue_cost = self.issue_cost;
        let inv_dram_rate = self.inv_dram_rate;
        let dram_latency = self.spec.dram_latency;
        let shared_latency = self.spec.shared_latency;
        let l1_latency = self.spec.l1_latency;
        self.pops += 1;
        let time = event.time;
        let w = event.payload;
        let wi = w as usize;
        let mut now = time;
        // Pops drain in ascending time order and a coalesced run never
        // passes the pending-event bound while the calendar is
        // non-empty, so a plain store (not a max) is correct here; the
        // inline-continuation paths below do take the max, which covers
        // the final run against an empty calendar.
        self.last_time = time;
        // The earliest *other* pending event bounds how far this warp
        // may be advanced inline: while the warp's next wake-up is
        // strictly below it, that wake-up would be the next event popped
        // anyway, so processing it here is exact. The kernel hands the
        // bound to the handler with the pop itself
        // ([`SimulationContext::inline_bound`]); the calendar is
        // untouched during a pure run, so the bound stays valid for the
        // whole coalesced run.
        let qmin = if self.macro_on {
            ctx.inline_bound()
        } else {
            f64::NEG_INFINITY
        };
        let mut coalesced = false;
        // Register-resident copy of the warp's execution state for the
        // whole (possibly macro-stepped) run; written back at every exit
        // that leaves per-warp state behind.
        let mut exec = self.st.warp_exec[wi];
        if exec.pc == DONE_PC {
            // Staleness guard: a completed warp has no work left.
            return;
        }
        loop {
            // A warp with no iterations left after advancing is done.
            if exec.iters_left == 0 {
                self.st.warp_exec[wi] = exec;
                self.finish_warp(ctx, now, w);
                break;
            }
            let next: f64;
            // Handle a pending DRAM stage first.
            if exec.dram > 0.0 {
                let end = self.servers.dram.acquire(now, exec.dram * inv_dram_rate);
                self.dram_bytes += exec.dram;
                exec.dram = 0.0;
                exec.pc += 1;
                if exec.pc >= exec.pc_end {
                    exec.pc = exec.pc_start;
                    exec.iters_left -= 1;
                }
                next = end + dram_latency;
            } else {
                match micro[exec.pc as usize] {
                    MicroOp::Tc { service } => {
                        let issue_end = self.servers.issue.acquire(now, issue_cost);
                        next = self.servers.tc.acquire(issue_end, service);
                    }
                    MicroOp::Cd { service } => {
                        let issue_end = self.servers.issue.acquire(now, issue_cost);
                        next = self.servers.cd.acquire(issue_end, service);
                    }
                    MicroOp::Shared { service } => {
                        let issue_end = self.servers.issue.acquire(now, issue_cost);
                        next = self.servers.shared.acquire(issue_end, service) + shared_latency;
                    }
                    MicroOp::Global {
                        service,
                        miss_bytes,
                    } => {
                        let issue_end = self.servers.issue.acquire(now, issue_cost);
                        let l1_end = self.servers.l1.acquire(issue_end, service);
                        if miss_bytes > 0.0 {
                            exec.dram = miss_bytes;
                            next = l1_end;
                        } else {
                            next = l1_end + l1_latency;
                        }
                        if miss_bytes > 0.0 {
                            // pc advances after the DRAM stage.
                            let eligible = next < qmin;
                            if eligible {
                                self.coalesced += 1;
                                coalesced = true;
                                now = next;
                                self.last_time = self.last_time.max(now);
                                continue;
                            }
                            self.st.warp_exec[wi] = exec;
                            ctx.schedule(next, w);
                            break;
                        }
                    }
                    MicroOp::Barrier { id } => {
                        // Barrier arrivals mutate cross-warp state and
                        // re-enter through the calendar: write the local
                        // copy back first (the release advances this
                        // warp's stored pc).
                        self.st.warp_exec[wi] = exec;
                        self.arrive_barrier(ctx, now, w, id);
                        break;
                    }
                }
                // Advance past the completed op (DRAM-stage entries
                // returned above; barriers broke out).
                exec.pc += 1;
                if exec.pc >= exec.pc_end {
                    exec.pc = exec.pc_start;
                    exec.iters_left -= 1;
                }
            }
            let eligible = next < qmin && (exec.iters_left == 0 || run_ok[exec.pc as usize]);
            if eligible {
                // Inline continuation: absorb the push/pop.
                self.coalesced += 1;
                coalesced = true;
                now = next;
                self.last_time = self.last_time.max(now);
            } else {
                self.st.warp_exec[wi] = exec;
                ctx.schedule(next, w);
                break;
            }
        }
        if coalesced {
            self.macro_runs += 1;
        }
    }
}

/// Validates the plan, resets the scratch arena, launches the first wave
/// of blocks and drains the simulation kernel — monomorphized per queue
/// kind. (The argument list is the engine's full context on purpose:
/// bundling it into a struct would just move the same fields one level
/// down.)
#[allow(clippy::too_many_arguments)]
fn simulate_on<Q: SimQueue>(
    spec: &GpuSpec,
    plan: &ExecutablePlan,
    active_sms: u32,
    sink: &dyn TraceSink,
    options: EngineOptions,
    prog: &CompiledProgram,
    st: &mut EngineState,
    queue: &mut Q,
) -> Result<KernelRun, SimError> {
    let occupancy = plan.occupancy(spec);
    if occupancy == 0 {
        return Err(SimError::LaunchFailure {
            kernel: plan.name.clone(),
            reason: "block does not fit on an SM".to_string(),
        });
    }
    if plan.block.roles.iter().any(|r| r.warps == 0) {
        return Err(SimError::LaunchFailure {
            kernel: plan.name.clone(),
            reason: "role with zero warps".to_string(),
        });
    }
    st.reset(plan.block.roles.len());
    // Blocks assigned to the representative (busiest) SM: indices
    // congruent to 0 mod sm_count.
    st.pending
        .extend((0..plan.issued_blocks).step_by(spec.sm_count as usize));
    st.pending.reverse();
    let tracing = sink.enabled();
    let issue_cost = spec.issue_cost_per_op / spec.issue_slots_per_cycle;
    let dram_rate = spec.dram_bytes_per_cycle_per_sm(active_sms);
    let mut sim = Simulation::new(&mut *queue);
    let mut eng = WarpEngine {
        spec,
        plan,
        prog,
        st,
        servers: ServerBank::new(tracing),
        dram_bytes: 0.0,
        inv_dram_rate: 1.0 / dram_rate,
        issue_cost,
        coalesced: 0,
        pops: 0,
        macro_runs: 0,
        // Per-op trace events must fire exactly as in the
        // event-by-event engine, so tracing forces macro-stepping off.
        macro_on: options.macro_step && !tracing,
        last_time: 0.0,
        sink,
        tracing,
    };
    for _ in 0..occupancy {
        if eng.st.pending.is_empty() {
            break;
        }
        eng.launch_next_block(&mut sim, 0.0);
    }
    sim.run(&mut eng);
    eng.into_run()
}

fn run_with_scratch(
    scratch: &mut EngineScratch,
    spec: &GpuSpec,
    plan: &ExecutablePlan,
    active_sms: u32,
    sink: &dyn TraceSink,
    options: EngineOptions,
) -> Result<KernelRun, SimError> {
    let prog = plan.compiled_for(spec);
    let issue_cost = spec.issue_cost_per_op / spec.issue_slots_per_cycle;
    let EngineScratch {
        state,
        heap,
        calendar,
    } = scratch;
    match options.queue {
        QueueKind::Heap => {
            heap.reset();
            simulate_on(spec, plan, active_sms, sink, options, &prog, state, heap)
        }
        QueueKind::Calendar => {
            calendar.reset(issue_cost * BUCKET_WIDTH_ISSUE_COSTS);
            simulate_on(
                spec, plan, active_sms, sink, options, &prog, state, calendar,
            )
        }
    }
}

/// Simulates a plan on the device, assuming all SMs are active (the common
/// case for the paper's workloads).
///
/// ```
/// use std::sync::Arc;
/// use tacker_kernel::{ast::*, Bindings, Dim3, KernelDef, KernelKind, KernelLaunch};
/// use tacker_sim::{simulate, ExecutablePlan, GpuSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = GpuSpec::rtx2080ti();
/// let def = KernelDef::builder("axpy", KernelKind::Cuda)
///     .block_dim(Dim3::x(128))
///     .body(vec![Stmt::compute_cd(Expr::lit(64), "y[i] += a * x[i]")])
///     .build()?;
/// let launch = KernelLaunch::new(Arc::new(def), 680, Bindings::new());
/// let plan = ExecutablePlan::from_launch(&spec, &launch)?;
/// let run = simulate(&spec, &plan)?;
/// assert!(run.duration > tacker_kernel::SimTime::ZERO);
/// assert!(run.activity.cd_busy > tacker_kernel::Cycles::ZERO);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`SimError::LaunchFailure`] when the plan cannot be placed and
/// [`SimError::Deadlock`] when barrier expectations can never be met.
pub fn simulate(spec: &GpuSpec, plan: &ExecutablePlan) -> Result<KernelRun, SimError> {
    simulate_with_active_sms(spec, plan, spec.sm_count)
}

/// [`simulate`] with an explicit count of SMs contending for DRAM.
pub fn simulate_with_active_sms(
    spec: &GpuSpec,
    plan: &ExecutablePlan,
    active_sms: u32,
) -> Result<KernelRun, SimError> {
    simulate_with_options(
        spec,
        plan,
        active_sms,
        &tacker_trace::NoopSink,
        EngineOptions::default(),
    )
}

/// [`simulate_with_active_sms`] with a trace sink receiving engine events:
/// pipeline busy intervals, FCFS-server queue/wait statistics, barrier
/// arrivals/releases, deadlock context, and the completion summary.
///
/// With a disabled sink (e.g. [`tacker_trace::NoopSink`]) this is the same
/// hot path as [`simulate`]: `enabled()` is hoisted into a bool once at
/// engine construction and no event is ever built. With an *enabled*
/// sink, macro-stepping is forced off so the per-event stream (barrier
/// arrivals, server statistics) is identical to the event-by-event
/// reference engine.
pub fn simulate_traced(
    spec: &GpuSpec,
    plan: &ExecutablePlan,
    active_sms: u32,
    sink: &dyn TraceSink,
) -> Result<KernelRun, SimError> {
    simulate_with_options(spec, plan, active_sms, sink, EngineOptions::default())
}

/// Fully explicit entry point — the thin facade over the component
/// engine: queue kind and macro-stepping are chosen by `options`. Every
/// combination produces identical results (and an identical
/// [`KernelRun::events`] count); only wall-clock speed and the
/// [`KernelRun::pops`]/[`KernelRun::macro_runs`] accounting differ.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_with_options(
    spec: &GpuSpec,
    plan: &ExecutablePlan,
    active_sms: u32,
    sink: &dyn TraceSink,
    options: EngineOptions,
) -> Result<KernelRun, SimError> {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => run_with_scratch(&mut scratch, spec, plan, active_sms, sink, options),
        // A trace sink that re-enters the simulator mid-run finds the
        // thread-local busy; fall back to a fresh arena for the nested
        // run rather than failing.
        Err(_) => run_with_scratch(
            &mut EngineScratch::default(),
            spec,
            plan,
            active_sms,
            sink,
            options,
        ),
    })
}
#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::ast::{ComputeUnit, MemDir, MemSpace};
    use tacker_kernel::{BlockProgram, Op, ResourceUsage, WarpProgram, WarpRole};

    fn plan_of(roles: Vec<WarpRole>, issued: u64) -> ExecutablePlan {
        let block = BlockProgram::new(roles);
        let threads = block.threads();
        ExecutablePlan::assemble(
            "test",
            false,
            block,
            issued,
            ResourceUsage::new(32, 0),
            threads,
            None,
        )
    }

    fn role(name: &str, warps: u32, ops: Vec<Op>, original_blocks: u64) -> WarpRole {
        WarpRole {
            name: name.into(),
            warps,
            program: WarpProgram::new(ops),
            original_blocks,
        }
    }

    fn compute(unit: ComputeUnit, ops: u64) -> Op {
        Op::Compute { unit, ops }
    }

    /// Every (queue, macro) combination for identity checks.
    fn all_options() -> [EngineOptions; 4] {
        [
            EngineOptions {
                queue: QueueKind::Heap,
                macro_step: false,
            },
            EngineOptions {
                queue: QueueKind::Heap,
                macro_step: true,
            },
            EngineOptions {
                queue: QueueKind::Calendar,
                macro_step: false,
            },
            EngineOptions {
                queue: QueueKind::Calendar,
                macro_step: true,
            },
        ]
    }

    /// Strips the configuration-dependent accounting so runs from
    /// different engine options can be compared for behavioural equality.
    fn canon(mut run: KernelRun) -> KernelRun {
        run.pops = 0;
        run.macro_runs = 0;
        run
    }

    #[test]
    fn role_iters_partitions_exactly() {
        // 10 original blocks over 4 issued blocks: 3,3,2,2.
        let iters: Vec<u64> = (0..4).map(|b| role_iters(10, 4, b)).collect();
        assert_eq!(iters, vec![3, 3, 2, 2]);
        assert_eq!(iters.iter().sum::<u64>(), 10);
        // Fewer originals than issued: trailing blocks idle.
        assert_eq!(role_iters(2, 4, 3), 0);
        assert_eq!(role_iters(2, 4, 1), 1);
    }

    #[test]
    fn role_iters_edge_cases() {
        // The last original block position runs exactly once.
        assert_eq!(role_iters(10, 10, 9), 1);
        assert_eq!(role_iters(7, 16, 6), 1);
        // b == original - 1 with original > issued still lands in range.
        assert_eq!(role_iters(5, 4, 3), 1); // positions 3, (7 ≥ 5 excluded)
                                            // issued > original: blocks at or past `original` are idle, the
                                            // covered prefix runs once each, and totals are conserved.
        for issued in [5u64, 8, 64] {
            let total: u64 = (0..issued).map(|b| role_iters(4, issued, b)).sum();
            assert_eq!(total, 4, "issued {issued}");
            assert_eq!(role_iters(4, issued, 4), 0);
        }
        // b >= issued never executes, even if b < original.
        assert_eq!(role_iters(100, 4, 4), 0);
    }

    #[test]
    fn compute_bound_duration_scales_with_work() {
        let spec = GpuSpec::rtx2080ti();
        let mk = |ops| {
            plan_of(
                vec![role("cd", 4, vec![compute(ComputeUnit::Cuda, ops)], 68)],
                68,
            )
        };
        let d1 = simulate(&spec, &mk(64_000)).unwrap().cycles.get();
        let d2 = simulate(&spec, &mk(128_000)).unwrap().cycles.get();
        // Subtract the fixed launch overhead before comparing scaling.
        let oh = spec.kernel_launch_overhead as u64 + spec.block_launch_overhead as u64;
        let w1 = d1 - oh;
        let w2 = d2 - oh;
        let ratio = w2 as f64 / w1 as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn tensor_and_cuda_roles_overlap() {
        let spec = GpuSpec::rtx2080ti();
        // Equal-duration TC and CD work in separate kernels...
        let tc_ops = 512_000; // 1000 cycles of TC time
        let cd_ops = 64_000; // 1000 cycles of CD time
        let solo_tc = plan_of(
            vec![role(
                "tc",
                4,
                vec![compute(ComputeUnit::Tensor, tc_ops)],
                68,
            )],
            68,
        );
        let solo_cd = plan_of(
            vec![role("cd", 4, vec![compute(ComputeUnit::Cuda, cd_ops)], 68)],
            68,
        );
        let fused = plan_of(
            vec![
                role("tc", 4, vec![compute(ComputeUnit::Tensor, tc_ops)], 68),
                role("cd", 4, vec![compute(ComputeUnit::Cuda, cd_ops)], 68),
            ],
            68,
        );
        let t = simulate(&spec, &solo_tc).unwrap().cycles.get() as f64;
        let c = simulate(&spec, &solo_cd).unwrap().cycles.get() as f64;
        let f = simulate(&spec, &fused).unwrap().cycles.get() as f64;
        // The fused kernel overlaps the two pipelines: far faster than
        // sequential, within ~15% of the slower component.
        assert!(f < 0.7 * (t + c), "f={f} t={t} c={c}");
        assert!(f < 1.2 * t.max(c), "f={f} t={t} c={c}");
    }

    #[test]
    fn partial_barriers_work_sync_threads_deadlocks_in_fused() {
        let spec = GpuSpec::rtx2080ti();
        // Two roles; role A synchronizes on barrier 1 expecting only its own
        // warps — fine.
        let ok = plan_of(
            vec![
                role(
                    "a",
                    2,
                    vec![compute(ComputeUnit::Cuda, 64), Op::Barrier { id: 1 }],
                    68,
                ),
                role("b", 2, vec![compute(ComputeUnit::Cuda, 64)], 68),
            ],
            68,
        );
        assert!(simulate(&spec, &ok).is_ok());

        // Same structure, but the barrier expects the whole block (a kept
        // __syncthreads()) — deadlock, as §V-D predicts. Every engine
        // configuration reports the same pending barrier. The mutated
        // clone shares the original's compiled-program cache, which must
        // re-verify the block contents and recompile.
        let mut bad = ok.clone();
        bad.block.set_barrier_expectation(1, 4);
        for opts in all_options() {
            let err =
                simulate_with_options(&spec, &bad, 68, &tacker_trace::NoopSink, opts).unwrap_err();
            assert!(
                matches!(err, SimError::Deadlock { ref pending_barriers, .. }
                if pending_barriers.contains(&1)),
                "{opts:?}"
            );
        }
    }

    #[test]
    fn dram_contention_slows_memory_bound_kernels() {
        let spec = GpuSpec::rtx2080ti();
        let mem_op = Op::Memory {
            dir: MemDir::Read,
            space: MemSpace::Global,
            bytes: 64 * 1024,
            locality: 0.0,
        };
        let plan = plan_of(vec![role("m", 4, vec![mem_op], 68)], 68);
        let few = simulate_with_active_sms(&spec, &plan, 17).unwrap();
        let many = simulate_with_active_sms(&spec, &plan, 68).unwrap();
        assert!(many.cycles > few.cycles);
        assert!(many.dram_bytes > 0.0);
    }

    #[test]
    fn activity_summary_reflects_pipeline_use() {
        let spec = GpuSpec::rtx2080ti();
        let plan = plan_of(
            vec![role(
                "tc",
                2,
                vec![compute(ComputeUnit::Tensor, 51_200)],
                68,
            )],
            68,
        );
        let run = simulate(&spec, &plan).unwrap();
        assert!(run.activity.tc_busy > Cycles::ZERO);
        assert_eq!(run.activity.cd_busy, Cycles::ZERO);
        assert!(!run.tc_intervals.is_empty());
        assert!(run.cd_intervals.is_empty());
    }

    #[test]
    fn blocks_backfill_when_occupancy_limited() {
        let spec = GpuSpec::rtx2080ti();
        // 512 threads/block → only 2 resident; 6 blocks per SM must run in
        // 3 waves, taking ~3× the single-wave time.
        let mk = |blocks_per_sm: u64| {
            let block = BlockProgram::new(vec![role(
                "cd",
                16,
                vec![compute(ComputeUnit::Cuda, 64_000)],
                blocks_per_sm * 68,
            )]);
            ExecutablePlan::assemble(
                "wave",
                false,
                block,
                blocks_per_sm * 68,
                ResourceUsage::new(32, 0),
                512,
                None,
            )
        };
        let one = simulate(&spec, &mk(2)).unwrap().cycles.get() as f64;
        let three = simulate(&spec, &mk(6)).unwrap().cycles.get() as f64;
        let ratio = three / one;
        assert!(ratio > 2.5 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn empty_role_blocks_complete() {
        let spec = GpuSpec::rtx2080ti();
        // More issued blocks than original blocks: trailing blocks idle
        // (Fig. 6's last two blocks) and the run still terminates.
        let plan = plan_of(
            vec![role("cd", 2, vec![compute(ComputeUnit::Cuda, 640)], 34)],
            68,
        );
        let run = simulate(&spec, &plan).unwrap();
        assert!(run.cycles > Cycles::ZERO);
    }

    #[test]
    fn locality_reduces_dram_traffic() {
        let spec = GpuSpec::rtx2080ti();
        let mk = |loc| {
            plan_of(
                vec![role(
                    "m",
                    4,
                    vec![Op::Memory {
                        dir: MemDir::Read,
                        space: MemSpace::Global,
                        bytes: 32 * 1024,
                        locality: loc,
                    }],
                    68,
                )],
                68,
            )
        };
        let cold = simulate(&spec, &mk(0.0)).unwrap();
        let warm = simulate(&spec, &mk(0.9)).unwrap();
        assert!(warm.cycles < cold.cycles);
        assert!(warm.dram_bytes < cold.dram_bytes * 0.2);
    }

    #[test]
    fn queue_kinds_and_macro_stepping_agree() {
        let spec = GpuSpec::rtx2080ti();
        // Mixed plan: two pipelines, a barrier, a global access with a
        // DRAM stage, and uneven iteration counts.
        let plan = plan_of(
            vec![
                role(
                    "tc",
                    2,
                    vec![
                        compute(ComputeUnit::Tensor, 8_192),
                        Op::Barrier { id: 1 },
                        Op::Memory {
                            dir: MemDir::Read,
                            space: MemSpace::Global,
                            bytes: 4 * 1024,
                            locality: 0.5,
                        },
                    ],
                    200,
                ),
                role("cd", 3, vec![compute(ComputeUnit::Cuda, 2_048)], 137),
            ],
            136,
        );
        let reference = simulate_with_options(
            &spec,
            &plan,
            68,
            &tacker_trace::NoopSink,
            EngineOptions {
                queue: QueueKind::Heap,
                macro_step: false,
            },
        )
        .unwrap();
        // Reference engine: one pop per micro-event, nothing coalesced.
        assert_eq!(reference.pops, reference.events);
        assert_eq!(reference.macro_runs, 0);
        for opts in all_options() {
            let run =
                simulate_with_options(&spec, &plan, 68, &tacker_trace::NoopSink, opts).unwrap();
            assert_eq!(canon(run.clone()), canon(reference.clone()), "{opts:?}");
            assert_eq!(run.events, reference.events, "{opts:?}");
            if opts.macro_step {
                assert!(run.pops <= run.events, "{opts:?}");
            } else {
                assert_eq!(run.pops, run.events, "{opts:?}");
            }
        }
    }

    #[test]
    fn macro_stepping_coalesces_lone_warp_runs() {
        let spec = GpuSpec::rtx2080ti();
        // One warp, many iterations, no barrier: once alone, the whole
        // remaining program collapses into inline continuations.
        let plan = plan_of(
            vec![role("cd", 1, vec![compute(ComputeUnit::Cuda, 640)], 64)],
            1,
        );
        let run = simulate(&spec, &plan).unwrap();
        assert!(run.macro_runs > 0);
        assert!(
            run.pops < run.events / 8,
            "pops {} events {}",
            run.pops,
            run.events
        );
    }

    #[test]
    fn tracing_disables_macro_stepping() {
        let spec = GpuSpec::rtx2080ti();
        let plan = plan_of(
            vec![role("cd", 1, vec![compute(ComputeUnit::Cuda, 640)], 64)],
            1,
        );
        let sink = tacker_trace::RingSink::unbounded();
        let run = simulate_traced(&spec, &plan, 68, &sink).unwrap();
        assert_eq!(run.macro_runs, 0);
        assert_eq!(run.pops, run.events);
        assert!(!sink.is_empty());
    }

    /// The scratch arena must come back clean after an aborted
    /// (deadlocked) run: parked waiters and half-drained queues from the
    /// failure may not leak into the next simulation on the thread.
    #[test]
    fn scratch_recovers_after_deadlock() {
        let spec = GpuSpec::rtx2080ti();
        let clean = plan_of(
            vec![role("cd", 2, vec![compute(ComputeUnit::Cuda, 640)], 68)],
            68,
        );
        let baseline = simulate(&spec, &clean).unwrap();
        let mut dead = plan_of(
            vec![role(
                "a",
                2,
                vec![compute(ComputeUnit::Cuda, 64), Op::Barrier { id: 1 }],
                68,
            )],
            68,
        );
        dead.block.set_barrier_expectation(1, 99);
        for opts in all_options() {
            let err = simulate_with_options(&spec, &dead, 68, &tacker_trace::NoopSink, opts);
            assert!(matches!(err, Err(SimError::Deadlock { .. })), "{opts:?}");
            let after =
                simulate_with_options(&spec, &clean, 68, &tacker_trace::NoopSink, opts).unwrap();
            assert_eq!(canon(after), canon(baseline.clone()), "{opts:?}");
        }
    }
}
