//! Plan compilation: per-warp micro-op tables with every spec-dependent
//! quantity pre-resolved.
//!
//! The engine simulates thousands of *short* runs per sweep (a typical
//! kernel is under a thousand events), so per-run setup cost matters as
//! much as per-event cost. Compiling a plan — flattening every role's
//! [`Op`] program into a [`MicroOp`] table with service times already
//! divided out, plus the run-length and barrier-expectation metadata —
//! is pure function of `(spec, block program)`, so each
//! [`crate::ExecutablePlan`] caches the result in a shared cell and
//! every subsequent simulation of that plan starts from the table
//! directly.
//!
//! The service values are computed with the exact expressions the
//! event-by-event engine always used, so timings are bit-identical to
//! an uncached build.

use std::sync::{Arc, Mutex};

use tacker_kernel::ast::{ComputeUnit, MemSpace};
use tacker_kernel::{BlockProgram, Op};

use crate::spec::GpuSpec;

/// One op of a role's program with every spec-dependent quantity
/// pre-resolved, so the hot loop does table lookups and adds — no
/// per-event divisions or AST-shaped matching.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MicroOp {
    /// Tensor-pipeline compute: issue, then occupy TC for `service`.
    Tc { service: f64 },
    /// CUDA-pipeline compute: issue, then occupy CD for `service`.
    Cd { service: f64 },
    /// Shared-memory access: issue, shared server, fixed latency.
    Shared { service: f64 },
    /// Global access: issue, L1 stage, then a DRAM stage for
    /// `miss_bytes` when positive.
    Global { service: f64, miss_bytes: f64 },
    /// Arrive at named barrier `id`.
    Barrier { id: u16 },
}

/// A block program compiled against one [`GpuSpec`]: everything the
/// engine's hot loop reads per event, built once per (plan, spec).
#[derive(Debug)]
pub(crate) struct CompiledProgram {
    /// All roles' programs flattened into one micro-op table.
    pub micro: Vec<MicroOp>,
    /// Per flat pc: whether the op starts a barrier-free run (from the
    /// lowering's run-length metadata) — the macro-step eligibility
    /// gate.
    pub run_ok: Vec<bool>,
    /// Per role: (flat start, flat end) into `micro`.
    pub role_span: Vec<(u32, u32)>,
    /// Expected arrivals, directly indexed by barrier id; ids outside
    /// the lowering's table default to 1 arrival, matching the sparse
    /// lookup.
    pub barrier_expected: Vec<u32>,
}

impl CompiledProgram {
    fn build(spec: &GpuSpec, block: &BlockProgram) -> CompiledProgram {
        let mut micro = Vec::new();
        let mut run_ok = Vec::new();
        let mut role_span = Vec::with_capacity(block.roles.len());
        for role in &block.roles {
            let pc0 = micro.len() as u32;
            for op in &role.program.ops {
                micro.push(match op {
                    Op::Compute {
                        unit: ComputeUnit::Tensor,
                        ops,
                    } => MicroOp::Tc {
                        service: *ops as f64 / spec.tc_ops_per_cycle,
                    },
                    Op::Compute {
                        unit: ComputeUnit::Cuda,
                        ops,
                    } => MicroOp::Cd {
                        service: *ops as f64 / spec.cd_ops_per_cycle,
                    },
                    Op::Memory {
                        space: MemSpace::Shared,
                        bytes,
                        ..
                    } => MicroOp::Shared {
                        service: *bytes as f64 / spec.shared_bytes_per_cycle,
                    },
                    Op::Memory {
                        space: MemSpace::Global,
                        bytes,
                        locality,
                        ..
                    } => {
                        let bytes = *bytes as f64;
                        MicroOp::Global {
                            service: bytes / spec.l1_bytes_per_cycle,
                            miss_bytes: bytes * (1.0 - locality),
                        }
                    }
                    Op::Barrier { id } => MicroOp::Barrier { id: *id },
                });
            }
            run_ok.extend(role.program.run_lengths().iter().map(|&r| r > 0));
            role_span.push((pc0, micro.len() as u32));
        }
        let bound = block.barrier_bound();
        let mut barrier_expected = vec![1u32; bound];
        for b in &block.barriers {
            barrier_expected[b.id as usize] = b.expected_warps;
        }
        CompiledProgram {
            micro,
            run_ok,
            role_span,
            barrier_expected,
        }
    }
}

/// Compiled-program entries the cell will hold before evicting: plans
/// are simulated against a handful of specs at most (two device presets
/// plus test variants), so anything past this is churn, not reuse.
const MAX_CACHED_SPECS: usize = 8;

/// A shared, lazily filled cache of compiled programs, embedded in each
/// [`crate::ExecutablePlan`]. Clones of a plan share the cell (an `Arc`),
/// and the cell is deliberately **excluded from plan equality**: it is
/// memoization state, not plan semantics.
///
/// Lookups re-verify the full key — spec *and* block program — so a plan
/// whose public `block` field is mutated after a simulation (tests do
/// this to flip barrier expectations) recompiles instead of replaying a
/// stale table.
pub(crate) struct CompiledCell {
    slots: Arc<Mutex<Vec<CompiledSlot>>>,
}

/// One cached compilation: the full key (spec + block program) and the
/// table built for it.
type CompiledSlot = (GpuSpec, BlockProgram, Arc<CompiledProgram>);

impl CompiledCell {
    pub fn get_or_compile(&self, spec: &GpuSpec, block: &BlockProgram) -> Arc<CompiledProgram> {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, _, prog)) = slots.iter().find(|(s, b, _)| s == spec && b == block) {
            return Arc::clone(prog);
        }
        let prog = Arc::new(CompiledProgram::build(spec, block));
        if slots.len() >= MAX_CACHED_SPECS {
            slots.clear();
        }
        slots.push((spec.clone(), block.clone(), Arc::clone(&prog)));
        prog
    }
}

impl Default for CompiledCell {
    fn default() -> Self {
        CompiledCell {
            slots: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl Clone for CompiledCell {
    fn clone(&self) -> Self {
        CompiledCell {
            slots: Arc::clone(&self.slots),
        }
    }
}

impl std::fmt::Debug for CompiledCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self
            .slots
            .lock()
            .map(|s| s.len())
            .unwrap_or_else(|e| e.into_inner().len());
        write!(f, "CompiledCell({len} cached)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::{WarpProgram, WarpRole};

    fn block(ops: Vec<Op>) -> BlockProgram {
        BlockProgram::new(vec![WarpRole {
            name: "r".into(),
            warps: 1,
            program: WarpProgram::new(ops),
            original_blocks: 1,
        }])
    }

    #[test]
    fn cache_hits_on_same_spec_and_misses_on_mutated_block() {
        let spec = GpuSpec::rtx2080ti();
        let cell = CompiledCell::default();
        let b1 = block(vec![Op::Compute {
            unit: ComputeUnit::Cuda,
            ops: 64,
        }]);
        let p1 = cell.get_or_compile(&spec, &b1);
        let p2 = cell.get_or_compile(&spec, &b1);
        assert!(Arc::ptr_eq(&p1, &p2));
        // A different block program under the same cell must recompile.
        let b2 = block(vec![Op::Compute {
            unit: ComputeUnit::Cuda,
            ops: 128,
        }]);
        let p3 = cell.get_or_compile(&spec, &b2);
        assert!(!Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn service_times_match_the_spec() {
        let spec = GpuSpec::rtx2080ti();
        let cell = CompiledCell::default();
        let b = block(vec![Op::Compute {
            unit: ComputeUnit::Tensor,
            ops: 512,
        }]);
        let prog = cell.get_or_compile(&spec, &b);
        match prog.micro[0] {
            MicroOp::Tc { service } => {
                assert_eq!(service, 512.0 / spec.tc_ops_per_cycle);
            }
            ref other => panic!("expected Tc, got {other:?}"),
        }
        assert_eq!(prog.role_span, vec![(0, 1)]);
    }
}
