//! Latency and throughput metrics.
//!
//! The rank definition for every percentile in the workspace lives in
//! `tacker_trace::quantile` ([`nearest_rank`]): the exact [`percentile`]
//! here, the log-bucket `Histogram`, and the `QuantileSketch` all agree
//! on "the `⌈p·n⌉`-th smallest sample". [`LatencyStats`] is the
//! bounded-memory latency accumulator built on that module: exact
//! samples up to a retention limit, a fixed-memory sketch beyond it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tacker_kernel::SimTime;
use tacker_trace::quantile::nearest_rank;
use tacker_trace::QuantileSketch;

/// Mean of a latency sample.
pub fn mean(samples: &[SimTime]) -> SimTime {
    if samples.is_empty() {
        return SimTime::ZERO;
    }
    let total: u128 = samples.iter().map(|s| s.as_nanos() as u128).sum();
    SimTime::from_nanos((total / samples.len() as u128) as u64)
}

/// The p-th percentile (nearest-rank method), `p ∈ [0, 100]`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(samples: &[SimTime], p: f64) -> SimTime {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if samples.is_empty() {
        return SimTime::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = nearest_rank(sorted.len() as u64, p / 100.0) as usize;
    sorted[rank - 1]
}

/// Default number of exact latency samples [`LatencyStats`] retains
/// before spilling into the fixed-memory sketch. Small enough that batch
/// experiments (tens to hundreds of queries) stay exact — and therefore
/// bit-identical to the pre-sketch reports — while long serving runs cap
/// out at ~32 KiB of samples plus the sketch.
pub const DEFAULT_EXACT_LIMIT: usize = 4096;

#[derive(Debug)]
enum Repr {
    /// Every sample retained; percentiles are exact. The sorted cache is
    /// built lazily on the first percentile query and reused until the
    /// next observation, so repeated `p99_latency()` calls stop
    /// re-sorting the sample vector.
    Exact {
        samples: Vec<SimTime>,
        sorted: Mutex<Option<Vec<SimTime>>>,
        limit: usize,
    },
    /// Fixed-memory DDSketch-style summary; percentiles are within
    /// [`QuantileSketch::RELATIVE_ERROR`] of exact.
    Sketch(QuantileSketch),
}

/// Bounded-memory latency statistics: exact nearest-rank percentiles for
/// small runs, a mergeable fixed-memory quantile sketch beyond a
/// retention limit.
///
/// Construction picks the mode: [`LatencyStats::exact`] never spills
/// (the pre-existing behavior), [`LatencyStats::auto`] spills past
/// [`DEFAULT_EXACT_LIMIT`] samples, and [`LatencyStats::with_limit`]`(0)`
/// sketches from the first sample. Spilling replays the retained samples
/// into the sketch, so the summary covers the whole stream either way.
///
/// Count, sum (hence mean), min and max stay exact in both modes. The
/// struct tracks its own [`peak_bytes`](LatencyStats::peak_bytes) —
/// the high-water mark of retained sample memory — which the bench
/// suite's bounded-memory gate reads.
#[derive(Debug)]
pub struct LatencyStats {
    repr: Repr,
    peak_bytes: AtomicUsize,
}

impl Clone for LatencyStats {
    fn clone(&self) -> Self {
        let repr = match &self.repr {
            Repr::Exact {
                samples,
                sorted,
                limit,
            } => Repr::Exact {
                samples: samples.clone(),
                sorted: Mutex::new(sorted.lock().unwrap().clone()),
                limit: *limit,
            },
            Repr::Sketch(s) => Repr::Sketch(s.clone()),
        };
        LatencyStats {
            repr,
            peak_bytes: AtomicUsize::new(self.peak_bytes.load(Ordering::Relaxed)),
        }
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::auto()
    }
}

impl LatencyStats {
    /// Exact-only stats: never spills to the sketch.
    pub fn exact() -> Self {
        LatencyStats::with_limit(usize::MAX)
    }

    /// Exact up to [`DEFAULT_EXACT_LIMIT`] samples, sketch beyond.
    pub fn auto() -> Self {
        LatencyStats::with_limit(DEFAULT_EXACT_LIMIT)
    }

    /// Exact up to `limit` retained samples, sketch beyond; `limit == 0`
    /// sketches from the first sample.
    pub fn with_limit(limit: usize) -> Self {
        let repr = if limit == 0 {
            Repr::Sketch(QuantileSketch::new())
        } else {
            Repr::Exact {
                samples: Vec::new(),
                sorted: Mutex::new(None),
                limit,
            }
        };
        let stats = LatencyStats {
            repr,
            peak_bytes: AtomicUsize::new(0),
        };
        stats.note_retained();
        stats
    }

    fn note_retained(&self) {
        let bytes = self.retained_bytes();
        self.peak_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Records one query latency.
    pub fn observe(&mut self, latency: SimTime) {
        let spill = match &mut self.repr {
            Repr::Exact {
                samples,
                sorted,
                limit,
            } => {
                samples.push(latency);
                *sorted.get_mut().unwrap() = None;
                samples.len() > *limit
            }
            Repr::Sketch(s) => {
                s.observe(latency.as_nanos());
                false
            }
        };
        self.note_retained();
        if spill {
            self.force_sketch();
        }
    }

    /// Converts an exact representation into the sketch, replaying every
    /// retained sample.
    fn force_sketch(&mut self) {
        if let Repr::Exact { samples, .. } = &self.repr {
            let mut sketch = QuantileSketch::new();
            for s in samples {
                sketch.observe(s.as_nanos());
            }
            self.repr = Repr::Sketch(sketch);
            self.note_retained();
        }
    }

    /// Completed samples recorded.
    pub fn count(&self) -> usize {
        match &self.repr {
            Repr::Exact { samples, .. } => samples.len(),
            Repr::Sketch(s) => s.count() as usize,
        }
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact mean latency (`None` when empty) — the sum is exact in both
    /// modes.
    pub fn mean(&self) -> Option<SimTime> {
        match &self.repr {
            Repr::Exact { samples, .. } => (!samples.is_empty()).then(|| mean(samples)),
            Repr::Sketch(s) => s.mean().map(SimTime::from_nanos),
        }
    }

    /// The p-th percentile, `p ∈ [0, 100]` (`None` when empty): exact
    /// nearest-rank in exact mode (cached sort, invalidated on observe),
    /// sketch estimate within [`QuantileSketch::RELATIVE_ERROR`]
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<SimTime> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        match &self.repr {
            Repr::Exact {
                samples, sorted, ..
            } => {
                if samples.is_empty() {
                    return None;
                }
                let mut cache = sorted.lock().unwrap();
                let sorted_samples = cache.get_or_insert_with(|| {
                    let mut v = samples.clone();
                    v.sort_unstable();
                    v
                });
                let rank = nearest_rank(sorted_samples.len() as u64, p / 100.0) as usize;
                let out = sorted_samples[rank - 1];
                drop(cache);
                self.note_retained();
                Some(out)
            }
            Repr::Sketch(s) => s.percentile(p / 100.0).map(SimTime::from_nanos),
        }
    }

    /// The retained exact samples, in observation order (empty once the
    /// stats have spilled to the sketch).
    pub fn samples(&self) -> &[SimTime] {
        match &self.repr {
            Repr::Exact { samples, .. } => samples,
            Repr::Sketch(_) => &[],
        }
    }

    /// Whether the stats have spilled into sketch mode.
    pub fn is_sketch(&self) -> bool {
        matches!(self.repr, Repr::Sketch(_))
    }

    /// Bytes currently held for latency samples: the sample vector plus
    /// any sorted cache in exact mode, the fixed sketch footprint in
    /// sketch mode.
    pub fn retained_bytes(&self) -> usize {
        match &self.repr {
            Repr::Exact {
                samples, sorted, ..
            } => {
                let cache = sorted
                    .lock()
                    .unwrap()
                    .as_ref()
                    .map_or(0, |v| v.capacity() * std::mem::size_of::<SimTime>());
                samples.capacity() * std::mem::size_of::<SimTime>() + cache
            }
            Repr::Sketch(s) => s.memory_bytes(),
        }
    }

    /// High-water mark of [`retained_bytes`](LatencyStats::retained_bytes)
    /// over the stats' lifetime — what the bounded-memory bench gate
    /// checks stays flat as query count grows in sketch mode.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// This stream as a [`QuantileSketch`] (built from the samples in
    /// exact mode, cloned in sketch mode).
    pub fn to_sketch(&self) -> QuantileSketch {
        match &self.repr {
            Repr::Exact { samples, .. } => {
                let mut sketch = QuantileSketch::new();
                for s in samples {
                    sketch.observe(s.as_nanos());
                }
                sketch
            }
            Repr::Sketch(s) => s.clone(),
        }
    }

    /// Folds `other` into `self`. Exact+exact concatenates samples
    /// (spilling if the limit is crossed); any sketch involvement
    /// converts `self` to sketch mode and merges bucket-wise, which is
    /// order-invariant.
    pub fn merge(&mut self, other: &LatencyStats) {
        match &other.repr {
            Repr::Exact { samples, .. } => {
                for &s in samples {
                    self.observe(s);
                }
            }
            Repr::Sketch(o) => {
                self.force_sketch();
                if let Repr::Sketch(s) = &mut self.repr {
                    s.merge(o);
                }
                self.note_retained();
            }
        }
    }
}

/// Relative throughput improvement of `new` over `base` (Equation 10's
/// intent): positive when `new` completes more BE work per unit time.
pub fn throughput_improvement(base_work_rate: f64, new_work_rate: f64) -> f64 {
    if base_work_rate <= 0.0 {
        return 0.0;
    }
    (new_work_rate - base_work_rate) / base_work_rate
}

/// The §VIII-G overlap rate (Equation 11), clamped to `[0, 0.5]`.
pub fn overlap_rate(solo_a: SimTime, solo_b: SimTime, corun: SimTime) -> f64 {
    let a = solo_a.as_nanos() as f64;
    let b = solo_b.as_nanos() as f64;
    let c = corun.as_nanos() as f64;
    if a + b <= 0.0 {
        0.0
    } else {
        ((a + b - c) / (a + b)).clamp(0.0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(v: &[u64]) -> Vec<SimTime> {
        v.iter().map(|&x| SimTime::from_micros(x)).collect()
    }

    #[test]
    fn mean_and_percentiles() {
        let s = times(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(mean(&s), SimTime::from_micros(55));
        assert_eq!(percentile(&s, 50.0), SimTime::from_micros(50));
        assert_eq!(percentile(&s, 99.0), SimTime::from_micros(100));
        assert_eq!(percentile(&s, 100.0), SimTime::from_micros(100));
        assert_eq!(percentile(&s, 0.0), SimTime::from_micros(10));
    }

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(mean(&[]), SimTime::ZERO);
        assert_eq!(percentile(&[], 99.0), SimTime::ZERO);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = times(&[90, 10, 50]);
        assert_eq!(percentile(&s, 50.0), SimTime::from_micros(50));
    }

    #[test]
    fn improvement_sign() {
        assert!((throughput_improvement(100.0, 118.6) - 0.186).abs() < 1e-9);
        assert!(throughput_improvement(100.0, 90.0) < 0.0);
        assert_eq!(throughput_improvement(0.0, 5.0), 0.0);
    }

    #[test]
    fn overlap_rate_bounds() {
        let a = SimTime::from_micros(100);
        // Perfect overlap: corun = max(a, b) = 100 → rate 0.5.
        assert!((overlap_rate(a, a, a) - 0.5).abs() < 1e-9);
        // No overlap: corun = a + b → 0.
        assert_eq!(overlap_rate(a, a, SimTime::from_micros(200)), 0.0);
        // Pathological corun > serial clamps at 0.
        assert_eq!(overlap_rate(a, a, SimTime::from_micros(300)), 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_percentile_panics() {
        let _ = percentile(&[], 101.0);
    }

    #[test]
    fn latency_stats_exact_matches_free_functions() {
        let s = times(&[90, 10, 50, 70, 30]);
        let mut stats = LatencyStats::exact();
        for &t in &s {
            stats.observe(t);
        }
        assert_eq!(stats.count(), 5);
        assert!(!stats.is_sketch());
        assert_eq!(stats.mean(), Some(mean(&s)));
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(stats.percentile(p), Some(percentile(&s, p)));
        }
        assert_eq!(stats.samples(), &s[..]);
    }

    #[test]
    fn latency_stats_spills_past_the_limit_and_stays_bounded() {
        let mut stats = LatencyStats::with_limit(10);
        for i in 0..10u64 {
            stats.observe(SimTime::from_micros(i * 10 + 10));
        }
        assert!(!stats.is_sketch());
        stats.observe(SimTime::from_micros(110));
        assert!(stats.is_sketch(), "11th sample crosses the limit");
        assert_eq!(stats.count(), 11);
        assert!(stats.samples().is_empty());
        let fixed = stats.retained_bytes();
        for i in 0..100_000u64 {
            stats.observe(SimTime::from_nanos(i * 997 + 1));
        }
        assert_eq!(stats.retained_bytes(), fixed, "sketch memory is flat");
        // Mean stays exact even after the spill.
        assert!(stats.mean().is_some());
        assert!(stats.peak_bytes() >= fixed);
    }

    #[test]
    fn latency_stats_limit_zero_sketches_immediately() {
        let mut stats = LatencyStats::with_limit(0);
        stats.observe(SimTime::from_micros(42));
        assert!(stats.is_sketch());
        assert_eq!(stats.count(), 1);
    }

    #[test]
    fn latency_stats_merge_matches_union_sketch() {
        let mut a = LatencyStats::with_limit(0);
        let mut b = LatencyStats::with_limit(0);
        let mut all = LatencyStats::with_limit(0);
        for i in 0..50u64 {
            let t = SimTime::from_micros(i * 13 + 7);
            if i % 2 == 0 {
                a.observe(t);
            } else {
                b.observe(t);
            }
            all.observe(t);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.to_sketch(), all.to_sketch());
    }

    #[test]
    fn latency_stats_percentile_cache_survives_repeat_queries() {
        let mut stats = LatencyStats::exact();
        for i in 0..100u64 {
            stats.observe(SimTime::from_micros((i * 37) % 91 + 1));
        }
        let first = stats.percentile(99.0);
        assert_eq!(stats.percentile(99.0), first);
        stats.observe(SimTime::from_micros(1));
        // Cache invalidated, result still exact.
        assert_eq!(
            stats.percentile(0.0),
            Some(SimTime::from_micros(1)),
            "new minimum visible after cache invalidation"
        );
    }
}
