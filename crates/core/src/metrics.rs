//! Latency and throughput metrics.

use tacker_kernel::SimTime;

/// Mean of a latency sample.
pub fn mean(samples: &[SimTime]) -> SimTime {
    if samples.is_empty() {
        return SimTime::ZERO;
    }
    let total: u128 = samples.iter().map(|s| s.as_nanos() as u128).sum();
    SimTime::from_nanos((total / samples.len() as u128) as u64)
}

/// The p-th percentile (nearest-rank method), `p ∈ [0, 100]`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(samples: &[SimTime], p: f64) -> SimTime {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if samples.is_empty() {
        return SimTime::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Relative throughput improvement of `new` over `base` (Equation 10's
/// intent): positive when `new` completes more BE work per unit time.
pub fn throughput_improvement(base_work_rate: f64, new_work_rate: f64) -> f64 {
    if base_work_rate <= 0.0 {
        return 0.0;
    }
    (new_work_rate - base_work_rate) / base_work_rate
}

/// The §VIII-G overlap rate (Equation 11), clamped to `[0, 0.5]`.
pub fn overlap_rate(solo_a: SimTime, solo_b: SimTime, corun: SimTime) -> f64 {
    let a = solo_a.as_nanos() as f64;
    let b = solo_b.as_nanos() as f64;
    let c = corun.as_nanos() as f64;
    if a + b <= 0.0 {
        0.0
    } else {
        ((a + b - c) / (a + b)).clamp(0.0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(v: &[u64]) -> Vec<SimTime> {
        v.iter().map(|&x| SimTime::from_micros(x)).collect()
    }

    #[test]
    fn mean_and_percentiles() {
        let s = times(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(mean(&s), SimTime::from_micros(55));
        assert_eq!(percentile(&s, 50.0), SimTime::from_micros(50));
        assert_eq!(percentile(&s, 99.0), SimTime::from_micros(100));
        assert_eq!(percentile(&s, 100.0), SimTime::from_micros(100));
        assert_eq!(percentile(&s, 0.0), SimTime::from_micros(10));
    }

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(mean(&[]), SimTime::ZERO);
        assert_eq!(percentile(&[], 99.0), SimTime::ZERO);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = times(&[90, 10, 50]);
        assert_eq!(percentile(&s, 50.0), SimTime::from_micros(50));
    }

    #[test]
    fn improvement_sign() {
        assert!((throughput_improvement(100.0, 118.6) - 0.186).abs() < 1e-9);
        assert!(throughput_improvement(100.0, 90.0) < 0.0);
        assert_eq!(throughput_improvement(0.0, 5.0), 0.0);
    }

    #[test]
    fn overlap_rate_bounds() {
        let a = SimTime::from_micros(100);
        // Perfect overlap: corun = max(a, b) = 100 → rate 0.5.
        assert!((overlap_rate(a, a, a) - 0.5).abs() < 1e-9);
        // No overlap: corun = a + b → 0.
        assert_eq!(overlap_rate(a, a, SimTime::from_micros(200)), 0.0);
        // Pathological corun > serial clamps at 0.
        assert_eq!(overlap_rate(a, a, SimTime::from_micros(300)), 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_percentile_panics() {
        let _ = percentile(&[], 101.0);
    }
}
