//! Baselines and co-running interface comparisons (§VIII-G).
//!
//! * **Baymax** is [`crate::manager::Policy::Baymax`] — the same server
//!   loop with fusion disabled (reorder only).
//! * **MPS+PTB** and **Stream+PTB** are modelled via
//!   [`tacker_sim::concurrent`]: black-box co-residency with scheduler
//!   jitter. This module wraps them in the Fig. 20 overlap-rate
//!   experiment, alongside Tacker's deterministic fusion.

use std::sync::Arc;

use tacker_kernel::SimTime;
use tacker_sim::{corun, CorunPolicy, Device, ExecutablePlan};
use tacker_workloads::WorkloadKernel;

use crate::error::TackerError;
use crate::library::FusionLibrary;
use crate::metrics::overlap_rate;
use crate::profile::KernelProfiler;

/// The co-running interfaces compared in Fig. 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorunInterface {
    /// Tacker's static kernel fusion.
    TackerFusion,
    /// NVIDIA MPS with PTB kernels.
    MpsPtb,
    /// CUDA streams with PTB kernels.
    StreamPtb,
}

impl CorunInterface {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CorunInterface::TackerFusion => "Tacker",
            CorunInterface::MpsPtb => "MPS+PTB",
            CorunInterface::StreamPtb => "Stream+PTB",
        }
    }
}

/// Result of one overlap experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapResult {
    /// Interface used.
    pub interface: CorunInterface,
    /// Solo duration of the TC kernel.
    pub solo_tc: SimTime,
    /// Solo duration of the CD kernel.
    pub solo_cd: SimTime,
    /// Co-running duration.
    pub corun: SimTime,
    /// The Equation 11 overlap rate, in `[0, 0.5]`.
    pub overlap: f64,
}

/// Runs the Fig. 20 overlap experiment for one (TC, CD) kernel pair.
///
/// The paper tunes the solo durations of the two kernels to be equal; the
/// caller is expected to pass launches satisfying that (the harness scales
/// the CD grid).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn overlap_experiment(
    device: &Arc<Device>,
    tc: &WorkloadKernel,
    cd: &WorkloadKernel,
    interface: CorunInterface,
    seed: u64,
) -> Result<OverlapResult, TackerError> {
    let profiler = Arc::new(KernelProfiler::new(Arc::clone(device)));
    let solo_tc = profiler.measure(tc)?;
    let solo_cd = profiler.measure(cd)?;
    let spec = device.spec();

    let corun_duration = match interface {
        CorunInterface::TackerFusion => {
            let library = FusionLibrary::new(Arc::clone(&profiler));
            match library.prepare(tc, cd)? {
                Some(entry) => {
                    let launch = {
                        let e = entry.lock().expect("entry poisoned");
                        e.fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings)
                    };
                    let plan = ExecutablePlan::from_launch(spec, &launch)?;
                    device.run_plan(&plan)?.duration
                }
                // Declined fusion: sequential execution.
                None => solo_tc + solo_cd,
            }
        }
        CorunInterface::MpsPtb | CorunInterface::StreamPtb => {
            let policy = if interface == CorunInterface::MpsPtb {
                CorunPolicy::MpsPtb
            } else {
                CorunPolicy::StreamPtb
            };
            let plan_tc = ExecutablePlan::from_launch(spec, &tc.launch())?;
            let plan_cd = ExecutablePlan::from_launch(spec, &cd.launch())?;
            let report = corun(spec, &plan_tc, &plan_cd, policy, seed)?;
            spec.cycles_to_time(report.corun)
        }
    };

    Ok(OverlapResult {
        interface,
        solo_tc,
        solo_cd,
        corun: corun_duration,
        overlap: overlap_rate(solo_tc, solo_cd, corun_duration),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::GpuSpec;
    use tacker_workloads::gemm::{gemm_workload, GemmShape};
    use tacker_workloads::parboil::Benchmark;

    /// A pair with tuned-equal solo durations, as §VIII-G prescribes.
    fn pair(device: &Arc<Device>) -> (WorkloadKernel, WorkloadKernel) {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let tc = gemm_workload(&gemm, GemmShape::new(2048, 2048, 1024));
        let mut cd = Benchmark::Cutcp.task()[0].clone();
        let t_tc = device.run_launch(&tc.launch()).expect("tc").duration;
        let t_cd = device.run_launch(&cd.launch()).expect("cd").duration;
        cd.grid = ((cd.grid as f64 * t_tc.ratio(t_cd)).round() as u64).max(1);
        (tc, cd)
    }

    #[test]
    fn tacker_fusion_yields_positive_overlap() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let (tc, cd) = pair(&device);
        let r = overlap_experiment(&device, &tc, &cd, CorunInterface::TackerFusion, 1).unwrap();
        assert!(r.overlap > 0.05, "overlap {}", r.overlap);
        assert!(r.overlap <= 0.5);
    }

    #[test]
    fn tacker_beats_or_matches_black_box_interfaces_on_average() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let (tc, cd) = pair(&device);
        let tacker =
            overlap_experiment(&device, &tc, &cd, CorunInterface::TackerFusion, 1).unwrap();
        let mut mps_sum = 0.0;
        let mut stream_sum = 0.0;
        for seed in 0..5 {
            mps_sum += overlap_experiment(&device, &tc, &cd, CorunInterface::MpsPtb, seed)
                .unwrap()
                .overlap;
            stream_sum += overlap_experiment(&device, &tc, &cd, CorunInterface::StreamPtb, seed)
                .unwrap()
                .overlap;
        }
        assert!(tacker.overlap >= mps_sum / 5.0 - 1e-9);
        assert!(tacker.overlap >= stream_sum / 5.0 - 1e-9);
    }

    #[test]
    fn interface_names() {
        assert_eq!(CorunInterface::TackerFusion.name(), "Tacker");
        assert_eq!(CorunInterface::MpsPtb.name(), "MPS+PTB");
        assert_eq!(CorunInterface::StreamPtb.name(), "Stream+PTB");
    }
}
