//! The runtime QoS-aware kernel manager (§VII).
//!
//! At every scheduling point the manager sees the head kernel of the
//! latency-critical query, the QoS headroom, and the head kernels of the
//! best-effort applications, and decides what to launch:
//!
//! * **fusion** — if some (LC, BE) pair has a prepared fused kernel whose
//!   predicted duration satisfies Equation 8
//!   (`T_tc + T_cd > T_fuse` and `T_fuse − T_lc < T_hr`), launch the fused
//!   kernel of the pair with the largest throughput gain
//!   `T_gain = T_be − (T_fuse − T_lc)`;
//! * **reorder** — otherwise, launch a BE kernel that fits the headroom
//!   outright (Baymax's behaviour);
//! * **LC kernel** — otherwise run the LC kernel directly.
//!
//! When multiple LC queries are active, earlier queries complete first and
//! only the last-arrived one participates in fusion (§VII-B-2); the server
//! enforces this by passing `multiple_lc = true`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tacker_kernel::{KernelLaunch, SimTime};
use tacker_trace::{DecisionKind, FusionRejectReason, NoopSink, TraceEvent, TraceSink};
use tacker_workloads::WorkloadKernel;

use crate::error::TackerError;
use crate::guard::{GuardLevel, QosGuard};
use crate::library::{FusionLibrary, PairEntry};
use crate::profile::KernelProfiler;

/// Scheduling policies under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Kernel fusion + reorder (the paper's system).
    Tacker,
    /// Reorder only (the Baymax baseline).
    Baymax,
    /// Fusion only, no reorder (ablation).
    FusionOnly,
    /// No best-effort work at all (for measuring solo latency / peak load).
    LcOnly,
}

impl Policy {
    /// Whether this policy may launch fused kernels.
    pub fn fusion_enabled(self) -> bool {
        matches!(self, Policy::Tacker | Policy::FusionOnly)
    }

    /// Whether this policy may reorder BE kernels into headroom.
    pub fn reorder_enabled(self) -> bool {
        matches!(self, Policy::Tacker | Policy::Baymax)
    }

    /// Whether BE kernels run at all.
    pub fn best_effort_enabled(self) -> bool {
        !matches!(self, Policy::LcOnly)
    }
}

/// What the manager decided to launch.
#[derive(Debug)]
pub enum Decision {
    /// Run the LC head kernel directly.
    RunLc {
        /// Predicted duration of the LC kernel.
        predicted: SimTime,
    },
    /// Run a fused (LC, BE) kernel.
    RunFused {
        /// Index of the chosen BE application.
        be_index: usize,
        /// The fused kernel launch.
        launch: KernelLaunch,
        /// The library entry (for online model refresh).
        entry: Arc<Mutex<PairEntry>>,
        /// Predicted fused duration.
        predicted: SimTime,
        /// Predicted solo duration of the Tensor component.
        x_tc: SimTime,
        /// Predicted solo duration of the CUDA component.
        x_cd: SimTime,
        /// Predicted solo duration of the LC kernel (either component).
        lc_predicted: SimTime,
    },
    /// Run a BE head kernel in the headroom (reorder).
    RunBe {
        /// Index of the chosen BE application.
        be_index: usize,
        /// Predicted duration of the BE kernel.
        predicted: SimTime,
    },
    /// Nothing runnable.
    Idle,
}

/// The online kernel manager.
pub struct KernelManager {
    profiler: Arc<KernelProfiler>,
    library: Arc<FusionLibrary>,
    policy: Policy,
    sink: Arc<dyn TraceSink>,
    /// `sink.enabled()` hoisted once at construction: the NoopSink path
    /// never builds an event.
    tracing: bool,
    /// Device wall-clock nanos of the current scheduling point, set by the
    /// server via [`KernelManager::set_now`] so decision events carry a
    /// timestamp without changing `decide`'s signature.
    now_nanos: AtomicU64,
    /// Adaptive QoS guard; when set, its degradation ladder caps what the
    /// policy may do and its margin shrinks the headroom seen by
    /// [`KernelManager::decide`].
    guard: Option<Arc<QosGuard>>,
}

impl KernelManager {
    /// Creates a manager with tracing disabled.
    pub fn new(
        profiler: Arc<KernelProfiler>,
        library: Arc<FusionLibrary>,
        policy: Policy,
    ) -> KernelManager {
        KernelManager::with_sink(profiler, library, policy, Arc::new(NoopSink))
    }

    /// Creates a manager emitting one [`TraceEvent::Decision`] per
    /// scheduling point (plus [`TraceEvent::FusionRejected`] per evaluated
    /// but rejected fusion candidate) to `sink`.
    pub fn with_sink(
        profiler: Arc<KernelProfiler>,
        library: Arc<FusionLibrary>,
        policy: Policy,
        sink: Arc<dyn TraceSink>,
    ) -> KernelManager {
        let tracing = sink.enabled();
        KernelManager {
            profiler,
            library,
            policy,
            sink,
            tracing,
            now_nanos: AtomicU64::new(0),
            guard: None,
        }
    }

    /// Attaches an adaptive QoS guard: the guard's ladder level caps what
    /// the policy may launch and its margin is subtracted from both
    /// headrooms at every decision.
    #[must_use]
    pub fn with_guard(mut self, guard: Arc<QosGuard>) -> KernelManager {
        self.guard = Some(guard);
        self
    }

    /// The guard's current ladder level ([`GuardLevel::Fuse`] when no
    /// guard is attached).
    pub fn guard_level(&self) -> GuardLevel {
        self.guard.as_ref().map_or(GuardLevel::Fuse, |g| g.level())
    }

    fn fusion_allowed(&self) -> bool {
        self.policy.fusion_enabled() && self.guard_level().fusion_allowed()
    }

    fn reorder_allowed(&self) -> bool {
        self.policy.reorder_enabled() && self.guard_level().reorder_allowed()
    }

    fn best_effort_allowed(&self) -> bool {
        self.policy.best_effort_enabled() && self.guard_level().best_effort_allowed()
    }

    /// Sets the device wall-clock instant stamped onto subsequent decision
    /// events.
    pub fn set_now(&self, now: SimTime) {
        self.now_nanos.store(now.as_nanos(), Ordering::Relaxed);
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_nanos.load(Ordering::Relaxed))
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The fusion library.
    pub fn library(&self) -> &Arc<FusionLibrary> {
        &self.library
    }

    /// Records a [`TraceEvent::FusionRejected`] for an evaluated but
    /// rejected (LC, BE) candidate pair.
    fn reject_fusion(
        &self,
        lc: &WorkloadKernel,
        be: &WorkloadKernel,
        reason: FusionRejectReason,
        x_tc: Option<SimTime>,
        x_cd: Option<SimTime>,
        t_fuse: Option<SimTime>,
    ) {
        self.sink.record(TraceEvent::FusionRejected {
            lc: lc.def.name_shared(),
            be: be.def.name_shared(),
            reason,
            x_tc,
            x_cd,
            t_fuse,
        });
    }

    /// Evaluates the fusion opportunity of one (LC, BE) head pair.
    ///
    /// Returns `(decision, gain)` when Equation 8 is satisfied.
    fn try_fuse(
        &self,
        lc: &WorkloadKernel,
        be_index: usize,
        be: &WorkloadKernel,
        headroom: SimTime,
    ) -> Result<Option<(Decision, SimTime)>, TackerError> {
        let Some((tc, cd)) = FusionLibrary::orient(lc, be) else {
            if self.tracing {
                self.reject_fusion(lc, be, FusionRejectReason::NoOrientation, None, None, None);
            }
            return Ok(None);
        };
        let Some(entry) = self.library.prepare(tc, cd)? else {
            if self.tracing {
                self.reject_fusion(lc, be, FusionRejectReason::NotPrepared, None, None, None);
            }
            return Ok(None);
        };
        if !entry.lock().expect("entry poisoned").eligible() {
            if self.tracing {
                self.reject_fusion(lc, be, FusionRejectReason::Blacklisted, None, None, None);
            }
            return Ok(None);
        }
        let x_tc = self.profiler.predict(tc)?;
        let x_cd = self.profiler.predict(cd)?;
        let t_lc = if std::ptr::eq(tc, lc) { x_tc } else { x_cd };
        let t_be = if std::ptr::eq(tc, lc) { x_cd } else { x_tc };
        let t_fuse = entry
            .lock()
            .expect("entry poisoned")
            .model
            .predict(x_tc, x_cd);
        // Equation 8 (with a small benefit margin absorbing model noise).
        let parallel_wins = (x_tc + x_cd).mul_f64(0.95) > t_fuse;
        let extra = t_fuse.saturating_sub(t_lc);
        if !parallel_wins || extra >= headroom {
            if self.tracing {
                let reason = if parallel_wins {
                    FusionRejectReason::ExceedsHeadroom
                } else {
                    FusionRejectReason::ParallelLoses
                };
                self.reject_fusion(lc, be, reason, Some(x_tc), Some(x_cd), Some(t_fuse));
            }
            return Ok(None);
        }
        let gain = t_be.saturating_sub(extra);
        if gain == SimTime::ZERO {
            if self.tracing {
                self.reject_fusion(
                    lc,
                    be,
                    FusionRejectReason::NoGain,
                    Some(x_tc),
                    Some(x_cd),
                    Some(t_fuse),
                );
            }
            return Ok(None);
        }
        let launch = {
            let e = entry.lock().expect("entry poisoned");
            e.fused.launch(tc.grid, cd.grid, &tc.bindings, &cd.bindings)
        };
        Ok(Some((
            Decision::RunFused {
                be_index,
                launch,
                entry,
                predicted: t_fuse,
                x_tc,
                x_cd,
                lc_predicted: t_lc,
            },
            gain,
        )))
    }

    /// Makes a scheduling decision.
    ///
    /// `lc_head` is the pending kernel of the query being served (if any),
    /// `headroom` the current QoS headroom available to fusion,
    /// `reorder_headroom` the (budget-capped) headroom available to whole
    /// reordered BE kernels, `be_heads` the ready head kernel of each BE
    /// application, and `multiple_lc` whether more than one LC query is
    /// active (which disables fusion per §VII-B-2).
    ///
    /// # Errors
    ///
    /// Propagates profiling/fusion errors.
    pub fn decide(
        &self,
        lc_head: Option<&WorkloadKernel>,
        headroom: SimTime,
        reorder_headroom: SimTime,
        be_heads: &[Option<WorkloadKernel>],
        multiple_lc: bool,
    ) -> Result<Decision, TackerError> {
        // The guard's inflated margin shrinks the headroom the decision
        // sees, absorbing systematic under-prediction.
        let margin = self.guard.as_ref().map_or(SimTime::ZERO, |g| g.margin());
        let headroom = headroom.saturating_sub(margin);
        let reorder_headroom = reorder_headroom.saturating_sub(margin);
        let (decision, gain) =
            self.decide_inner(lc_head, headroom, reorder_headroom, be_heads, multiple_lc)?;
        if self.tracing {
            self.emit_decision(
                &decision,
                gain,
                lc_head,
                headroom,
                reorder_headroom,
                be_heads,
            );
        }
        Ok(decision)
    }

    fn decide_inner(
        &self,
        lc_head: Option<&WorkloadKernel>,
        headroom: SimTime,
        reorder_headroom: SimTime,
        be_heads: &[Option<WorkloadKernel>],
        multiple_lc: bool,
    ) -> Result<(Decision, Option<SimTime>), TackerError> {
        match lc_head {
            Some(lc) => {
                let lc_predicted = self.profiler.predict(lc)?;
                // 1. Fusion with the highest-gain BE partner.
                if self.fusion_allowed() && !multiple_lc {
                    let mut best: Option<(Decision, SimTime)> = None;
                    for (i, be) in be_heads.iter().enumerate() {
                        let Some(be) = be else { continue };
                        if let Some((d, gain)) = self.try_fuse(lc, i, be, headroom)? {
                            if best.as_ref().is_none_or(|(_, g)| gain > *g) {
                                best = Some((d, gain));
                            }
                        }
                    }
                    if let Some((decision, gain)) = best {
                        return Ok((decision, Some(gain)));
                    }
                }
                // 2. Reorder a BE kernel into the headroom.
                if self.reorder_allowed() {
                    for (i, be) in be_heads.iter().enumerate() {
                        let Some(be) = be else { continue };
                        let predicted = self.profiler.predict(be)?;
                        if predicted < reorder_headroom {
                            return Ok((
                                Decision::RunBe {
                                    be_index: i,
                                    predicted,
                                },
                                None,
                            ));
                        }
                    }
                }
                // 3. The LC kernel itself.
                Ok((
                    Decision::RunLc {
                        predicted: lc_predicted,
                    },
                    None,
                ))
            }
            None => {
                // No LC query active: BE runs freely.
                if self.best_effort_allowed() {
                    for (i, be) in be_heads.iter().enumerate() {
                        if let Some(be) = be {
                            let predicted = self.profiler.predict(be)?;
                            return Ok((
                                Decision::RunBe {
                                    be_index: i,
                                    predicted,
                                },
                                None,
                            ));
                        }
                    }
                }
                Ok((Decision::Idle, None))
            }
        }
    }

    /// Emits the [`TraceEvent::Decision`] describing one scheduling point.
    fn emit_decision(
        &self,
        decision: &Decision,
        gain: Option<SimTime>,
        lc_head: Option<&WorkloadKernel>,
        headroom: SimTime,
        reorder_headroom: SimTime,
        be_heads: &[Option<WorkloadKernel>],
    ) {
        let be_name = |i: usize| {
            be_heads
                .get(i)
                .and_then(|b| b.as_ref())
                .map(|b| b.def.name_shared())
                .unwrap_or_else(|| "".into())
        };
        let (kind, kernel, predicted, x_tc, x_cd, t_lc) = match decision {
            Decision::RunFused {
                launch,
                predicted,
                x_tc,
                x_cd,
                lc_predicted,
                ..
            } => (
                DecisionKind::Fuse,
                launch.def.name_shared(),
                *predicted,
                Some(*x_tc),
                Some(*x_cd),
                Some(*lc_predicted),
            ),
            Decision::RunBe {
                be_index,
                predicted,
            } => {
                let kind = if lc_head.is_some() {
                    DecisionKind::Reorder
                } else {
                    DecisionKind::FreeBe
                };
                (kind, be_name(*be_index), *predicted, None, None, None)
            }
            Decision::RunLc { predicted } => (
                DecisionKind::RunLc,
                lc_head
                    .map(|k| k.def.name_shared())
                    .unwrap_or_else(|| "".into()),
                *predicted,
                None,
                None,
                None,
            ),
            Decision::Idle => (
                DecisionKind::Idle,
                "".into(),
                SimTime::ZERO,
                None,
                None,
                None,
            ),
        };
        self.sink.record(TraceEvent::Decision {
            at: self.now(),
            kind,
            kernel,
            headroom,
            reorder_headroom,
            predicted,
            x_tc,
            x_cd,
            t_lc,
            t_gain: gain,
        });
    }
}

impl std::fmt::Debug for KernelManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelManager")
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::{Device, GpuSpec};
    use tacker_workloads::gemm::{gemm_workload, GemmShape};
    use tacker_workloads::parboil::Benchmark;

    fn manager(policy: Policy) -> KernelManager {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let profiler = Arc::new(KernelProfiler::new(device));
        let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)));
        KernelManager::new(profiler, library, policy)
    }

    fn tc_kernel() -> WorkloadKernel {
        let def = tacker_workloads::dnn::compile::shared_gemm();
        gemm_workload(&def, GemmShape::new(2048, 2048, 1024))
    }

    #[test]
    fn policy_capabilities() {
        assert!(Policy::Tacker.fusion_enabled() && Policy::Tacker.reorder_enabled());
        assert!(!Policy::Baymax.fusion_enabled() && Policy::Baymax.reorder_enabled());
        assert!(Policy::FusionOnly.fusion_enabled() && !Policy::FusionOnly.reorder_enabled());
        assert!(!Policy::LcOnly.best_effort_enabled());
    }

    #[test]
    fn tacker_fuses_when_headroom_allows() {
        let m = manager(Policy::Tacker);
        let lc = tc_kernel();
        let be = Benchmark::Cutcp.task()[0].clone();
        let d = m
            .decide(
                Some(&lc),
                SimTime::from_millis(20),
                SimTime::from_millis(20),
                &[Some(be)],
                false,
            )
            .unwrap();
        assert!(matches!(d, Decision::RunFused { .. }), "got {d:?}");
    }

    #[test]
    fn no_headroom_means_lc_runs_directly() {
        let m = manager(Policy::Tacker);
        let lc = tc_kernel();
        let be = Benchmark::Cutcp.task()[0].clone();
        // Equation 8 is strict: zero headroom blocks fusion even when the
        // model predicts the fused kernel costs (almost) nothing extra.
        let d = m
            .decide(Some(&lc), SimTime::ZERO, SimTime::ZERO, &[Some(be)], false)
            .unwrap();
        assert!(matches!(d, Decision::RunLc { .. }), "got {d:?}");
    }

    #[test]
    fn baymax_reorders_but_never_fuses() {
        let m = manager(Policy::Baymax);
        let lc = tc_kernel();
        let be = Benchmark::Cutcp.task()[0].clone();
        let d = m
            .decide(
                Some(&lc),
                SimTime::from_millis(20),
                SimTime::from_millis(20),
                &[Some(be)],
                false,
            )
            .unwrap();
        assert!(matches!(d, Decision::RunBe { .. }), "got {d:?}");
    }

    #[test]
    fn fusion_only_policy_never_reorders() {
        let m = manager(Policy::FusionOnly);
        let lc = tc_kernel();
        // A non-fusable BE head (no library pair: both CUDA kernels).
        let be = Benchmark::Lbm.task()[0].clone();
        let lc_cd = Benchmark::Mriq.task()[0].clone();
        let hr = SimTime::from_millis(20);
        let d = m.decide(Some(&lc_cd), hr, hr, &[Some(be)], false).unwrap();
        // CD LC head + CD BE head: fusion impossible, reorder disabled →
        // the LC kernel runs directly.
        assert!(matches!(d, Decision::RunLc { .. }), "got {d:?}");
        let _ = lc;
    }

    #[test]
    fn multiple_lc_queries_disable_fusion() {
        let m = manager(Policy::Tacker);
        let lc = tc_kernel();
        let be = Benchmark::Cutcp.task()[0].clone();
        let d = m
            .decide(
                Some(&lc),
                SimTime::from_millis(20),
                SimTime::from_millis(20),
                &[Some(be)],
                true,
            )
            .unwrap();
        // Reorder may still happen; fusion must not.
        assert!(!matches!(d, Decision::RunFused { .. }), "got {d:?}");
    }

    #[test]
    fn degraded_guard_caps_the_policy() {
        use crate::guard::GuardConfig;
        let guard = Arc::new(QosGuard::new(
            SimTime::from_millis(50),
            GuardConfig::default(),
        ));
        // Sustained 2x under-prediction walks the ladder down.
        for _ in 0..64 {
            let _ = guard.observe_launch(1, SimTime::from_millis(1), SimTime::from_millis(2));
        }
        assert!(guard.level() > GuardLevel::Fuse, "guard never degraded");
        let m = manager(Policy::Tacker).with_guard(Arc::clone(&guard));
        assert_eq!(m.guard_level(), guard.level());
        let lc = tc_kernel();
        let be = Benchmark::Cutcp.task()[0].clone();
        let d = m
            .decide(
                Some(&lc),
                SimTime::from_millis(20),
                SimTime::from_millis(20),
                &[Some(be)],
                false,
            )
            .unwrap();
        // Tacker would fuse here (see tacker_fuses_when_headroom_allows);
        // the degraded guard forbids it.
        assert!(!matches!(d, Decision::RunFused { .. }), "got {d:?}");
    }

    #[test]
    fn idle_when_nothing_to_do() {
        let m = manager(Policy::Tacker);
        let d = m
            .decide(None, SimTime::ZERO, SimTime::ZERO, &[None, None], false)
            .unwrap();
        assert!(matches!(d, Decision::Idle));
    }

    #[test]
    fn free_be_run_when_no_lc() {
        let m = manager(Policy::Tacker);
        let be = Benchmark::Lbm.task()[0].clone();
        let d = m
            .decide(None, SimTime::ZERO, SimTime::ZERO, &[Some(be)], false)
            .unwrap();
        assert!(matches!(d, Decision::RunBe { be_index: 0, .. }));
    }

    #[test]
    fn lc_only_never_runs_be() {
        let m = manager(Policy::LcOnly);
        let be = Benchmark::Lbm.task()[0].clone();
        let d = m
            .decide(None, SimTime::ZERO, SimTime::ZERO, &[Some(be)], false)
            .unwrap();
        assert!(matches!(d, Decision::Idle));
    }
}
