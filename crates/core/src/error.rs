//! Runtime error type.

use std::error::Error;
use std::fmt;

use tacker_fuser::FuseError;
use tacker_predictor::PredictError;
use tacker_sim::SimError;

/// Errors from the Tacker runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum TackerError {
    /// Simulation failure.
    Sim(SimError),
    /// Fusion failure.
    Fuse(FuseError),
    /// Prediction/model failure.
    Predict(PredictError),
    /// The experiment configuration is unusable.
    Config {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TackerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TackerError::Sim(e) => write!(f, "simulation error: {e}"),
            TackerError::Fuse(e) => write!(f, "fusion error: {e}"),
            TackerError::Predict(e) => write!(f, "prediction error: {e}"),
            TackerError::Config { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for TackerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TackerError::Sim(e) => Some(e),
            TackerError::Fuse(e) => Some(e),
            TackerError::Predict(e) => Some(e),
            TackerError::Config { .. } => None,
        }
    }
}

impl From<SimError> for TackerError {
    fn from(e: SimError) -> Self {
        TackerError::Sim(e)
    }
}

impl From<FuseError> for TackerError {
    fn from(e: FuseError) -> Self {
        TackerError::Fuse(e)
    }
}

impl From<PredictError> for TackerError {
    fn from(e: PredictError) -> Self {
        TackerError::Predict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: TackerError = PredictError::InsufficientData { got: 0, need: 2 }.into();
        assert!(e.to_string().contains("prediction"));
        assert!(std::error::Error::source(&e).is_some());
        let c = TackerError::Config {
            reason: "no BE apps".into(),
        };
        assert!(c.to_string().contains("no BE apps"));
    }
}
