//! The unified co-location run report.
//!
//! One [`RunReport`] describes every kind of run — single- or
//! multi-service, batch or serving. Per-service
//! latency results live behind [`RunReport::per_service`]; the aggregate
//! accessors ([`RunReport::p99_latency`] and friends) fold over all
//! services and return `None` instead of a fake zero when a run completed
//! no queries.

use std::fmt::Write as _;
use std::sync::Arc;

use tacker_kernel::SimTime;
use tacker_sim::TimelineRecorder;
use tacker_trace::timeseries::WindowRow;
use tacker_trace::{Histogram, MetricsRegistry};

use crate::guard::GuardLevel;
use crate::manager::Policy;
use crate::metrics::LatencyStats;

/// Per-service results of a co-location run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Service name.
    pub name: String,
    /// Latency statistics over completed queries: exact samples for small
    /// runs, a fixed-memory quantile sketch above the retention limit.
    pub latency: LatencyStats,
    /// Queries that missed the QoS target.
    pub qos_violations: usize,
    /// Streaming latency histogram (microseconds), shared with the run's
    /// metrics registry under `query_latency_us.<service>`.
    pub latency_histogram: Arc<Histogram>,
}

impl ServiceReport {
    /// Completed queries.
    pub fn query_count(&self) -> usize {
        self.latency.count()
    }

    /// Mean query latency (`None` when no query completed).
    pub fn mean_latency(&self) -> Option<SimTime> {
        self.latency.mean()
    }

    /// 99th-percentile query latency (`None` when no query completed).
    /// Exact in sample mode (with a cached sort), sketch-estimated within
    /// `QuantileSketch::RELATIVE_ERROR` in sketch mode.
    pub fn p99_latency(&self) -> Option<SimTime> {
        self.latency.percentile(99.0)
    }
}

/// Attribution for one QoS violation: the runtime context a violating
/// query completed under, answering *why* the target was missed.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationRecord {
    /// Completion instant of the violating query.
    pub at: SimTime,
    /// The service whose query violated.
    pub service: String,
    /// End-to-end latency of the query.
    pub latency: SimTime,
    /// The QoS target it missed.
    pub target: SimTime,
    /// Guard ladder level in effect at completion (`None` when the guard
    /// was disarmed).
    pub guard_level: Option<GuardLevel>,
    /// Fault classes injected while the query was in flight
    /// (`"mispredict"`, `"straggler"`, `"be_flood"`,
    /// `"predictor_outage"`), empty when none fired.
    pub faults: Vec<&'static str>,
    /// The last co-running BE kernel launched before the violation, as
    /// `(name, content fingerprint)`.
    pub be_kernel: Option<(String, u64)>,
    /// Queue depth (in-flight queries) when the query was admitted.
    pub queue_depth: usize,
}

impl ViolationRecord {
    /// One stable-field-order JSON object for BENCH artifacts and logs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"at\":{},\"service\":\"{}\",\"latency\":{},\"target\":{}",
            self.at.as_nanos(),
            self.service,
            self.latency.as_nanos(),
            self.target.as_nanos()
        );
        if let Some(level) = self.guard_level {
            let _ = write!(out, ",\"guard\":\"{}\"", level.name());
        }
        out.push_str(",\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{f}\"");
        }
        out.push(']');
        if let Some((name, fp)) = &self.be_kernel {
            let _ = write!(out, ",\"be_kernel\":\"{name}\",\"be_fingerprint\":{fp}");
        }
        let _ = write!(out, ",\"queue_depth\":{}}}", self.queue_depth);
        out
    }
}

/// One audited QoS-guard ladder transition.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardAudit {
    /// Device wall-clock instant of the step.
    pub at: SimTime,
    /// Ladder level before the step.
    pub from: GuardLevel,
    /// Ladder level after the step.
    pub to: GuardLevel,
    /// What tripped (or cleared) the step.
    pub reason: &'static str,
    /// Worst per-kernel EWMA relative prediction error at the step.
    pub ewma_error: f64,
    /// EWMA of the QoS-violation indicator at the step.
    pub pressure: f64,
}

impl GuardAudit {
    /// One stable-field-order JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"at\":{},\"from\":\"{}\",\"to\":\"{}\",\"reason\":\"{}\",\"ewma_error\":{:.6},\"pressure\":{:.6}}}",
            self.at.as_nanos(),
            self.from.name(),
            self.to.name(),
            self.reason,
            self.ewma_error,
            self.pressure
        )
    }
}

/// Outcome of one co-location run (one or more LC services).
#[derive(Debug)]
pub struct RunReport {
    /// The scheduling policy used.
    pub policy: Policy,
    /// The QoS target the run was configured with.
    pub qos_target: SimTime,
    /// Per-service latency results (see [`RunReport::per_service`]).
    pub(crate) services: Vec<ServiceReport>,
    /// Total useful BE work completed (sum of solo durations of completed
    /// BE kernels).
    pub be_work: SimTime,
    /// BE kernels completed.
    pub be_kernels: u64,
    /// Fused launches performed.
    pub fused_launches: u64,
    /// BE kernels launched via reordering into headroom.
    pub reordered_launches: u64,
    /// Total simulated wall-clock time.
    pub wall: SimTime,
    /// Simulated time the device spent executing kernels (LC, BE and
    /// fused launches, including injected flood work); `wall - busy` is
    /// idle time. Pure accounting — identical on the fast and slow
    /// serving paths.
    pub busy: SimTime,
    /// Online model refreshes triggered (>10% prediction error).
    pub model_refreshes: u64,
    /// Device activity timeline, when recording was enabled.
    pub timeline: Option<TimelineRecorder>,
    /// Streaming latency histogram over all services (microseconds).
    /// Bounded-memory observability view; QoS gating still uses the exact
    /// sample-based percentiles.
    pub latency_histogram: Arc<Histogram>,
    /// Run-level metrics: decision counters, injection-budget gauge, and
    /// the per-service latency histograms.
    pub metrics: MetricsRegistry,
    /// QoS-guard ladder steps taken (0 when the guard was off or never
    /// tripped).
    pub guard_steps: u64,
    /// Faults injected by the run's [`crate::fault::FaultPlan`].
    pub faults_injected: u64,
    /// Final guard ladder level (`None` when the guard was off).
    pub guard_level: Option<GuardLevel>,
    /// Aggregate latency statistics over all services, in completion
    /// order (same bounded-memory representation as the per-service
    /// stats).
    pub latency: LatencyStats,
    /// Telemetry windows collected when windowed collection was enabled
    /// (empty otherwise). One row per non-empty fixed-width window of
    /// simulated time.
    pub windows: Vec<WindowRow>,
    /// Attribution record for every QoS violation, in violation order
    /// (capped at [`crate::serve::VIOLATION_LOG_CAP`]).
    pub violation_log: Vec<ViolationRecord>,
    /// Audit log of every guard ladder transition, in step order.
    pub guard_log: Vec<GuardAudit>,
}

impl RunReport {
    /// Per-service latency results.
    pub fn per_service(&self) -> &[ServiceReport] {
        &self.services
    }

    /// End-to-end latencies of every completed query, concatenated
    /// service-major (a single-service run preserves completion order).
    /// Empty for services that spilled into sketch mode — use
    /// [`RunReport::latency`] for statistics at any scale.
    pub fn query_latencies(&self) -> Vec<SimTime> {
        self.services
            .iter()
            .flat_map(|s| s.latency.samples().iter().copied())
            .collect()
    }

    /// Total completed queries across all services.
    pub fn query_count(&self) -> usize {
        self.services.iter().map(|s| s.latency.count()).sum()
    }

    /// Total queries that missed the QoS target, across all services.
    pub fn qos_violations(&self) -> usize {
        self.services.iter().map(|s| s.qos_violations).sum()
    }

    /// Mean query latency over all services (`None` when no query
    /// completed).
    pub fn mean_latency(&self) -> Option<SimTime> {
        self.latency.mean()
    }

    /// 99th-percentile query latency over all services (`None` when no
    /// query completed). Exact in sample mode — served from a cached
    /// sort, so repeated calls no longer re-sort the sample vector —
    /// and sketch-estimated within `QuantileSketch::RELATIVE_ERROR`
    /// beyond the retention limit.
    pub fn p99_latency(&self) -> Option<SimTime> {
        self.latency.percentile(99.0)
    }

    /// BE work completed per second of wall time (the throughput metric
    /// compared across policies in Fig. 14).
    pub fn be_work_rate(&self) -> f64 {
        if self.wall == SimTime::ZERO {
            0.0
        } else {
            self.be_work.as_nanos() as f64 / self.wall.as_nanos() as f64
        }
    }

    /// Whether every query of every service met the QoS target.
    pub fn qos_met(&self) -> bool {
        self.services.iter().all(|s| s.qos_violations == 0)
    }

    /// Fraction of wall time the device was executing kernels (0 when
    /// nothing ran).
    pub fn utilization(&self) -> f64 {
        if self.wall == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_nanos() as f64 / self.wall.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_trace::MetricsRegistry;

    fn svc(name: &str, lat_ms: &[u64], violations: usize) -> ServiceReport {
        let mut latency = LatencyStats::exact();
        for m in lat_ms {
            latency.observe(SimTime::from_millis(*m));
        }
        ServiceReport {
            name: name.to_string(),
            latency,
            qos_violations: violations,
            latency_histogram: Arc::new(Histogram::new()),
        }
    }

    fn report(services: Vec<ServiceReport>) -> RunReport {
        let registry = MetricsRegistry::new();
        let mut latency = LatencyStats::exact();
        for s in &services {
            for &t in s.latency.samples() {
                latency.observe(t);
            }
        }
        RunReport {
            policy: Policy::Tacker,
            qos_target: SimTime::from_millis(50),
            services,
            be_work: SimTime::ZERO,
            be_kernels: 0,
            fused_launches: 0,
            reordered_launches: 0,
            wall: SimTime::from_millis(100),
            busy: SimTime::ZERO,
            model_refreshes: 0,
            timeline: None,
            latency_histogram: registry.histogram("query_latency_us"),
            metrics: registry,
            guard_steps: 0,
            faults_injected: 0,
            guard_level: None,
            latency,
            windows: Vec::new(),
            violation_log: Vec::new(),
            guard_log: Vec::new(),
        }
    }

    #[test]
    fn empty_run_has_no_percentiles() {
        let r = report(vec![svc("a", &[], 0)]);
        assert_eq!(r.p99_latency(), None);
        assert_eq!(r.mean_latency(), None);
        assert_eq!(r.per_service()[0].p99_latency(), None);
        assert_eq!(r.query_count(), 0);
        assert!(r.qos_met());
    }

    #[test]
    fn aggregates_fold_over_services() {
        let r = report(vec![svc("a", &[10, 20], 1), svc("b", &[30], 2)]);
        assert_eq!(r.query_count(), 3);
        assert_eq!(r.qos_violations(), 3);
        assert_eq!(r.mean_latency(), Some(SimTime::from_millis(20)));
        assert_eq!(r.p99_latency(), Some(SimTime::from_millis(30)));
        assert_eq!(
            r.query_latencies(),
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30)
            ]
        );
        assert!(!r.qos_met());
    }
}
