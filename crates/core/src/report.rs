//! The unified co-location run report.
//!
//! One [`RunReport`] describes every kind of run — single- or
//! multi-service, batch or serving — replacing the old split between a
//! single-service report and a `MultiRunReport` wrapper. Per-service
//! latency results live behind [`RunReport::per_service`]; the aggregate
//! accessors ([`RunReport::p99_latency`] and friends) fold over all
//! services and return `None` instead of a fake zero when a run completed
//! no queries.

use std::sync::Arc;

use tacker_kernel::SimTime;
use tacker_sim::TimelineRecorder;
use tacker_trace::{Histogram, MetricsRegistry};

use crate::guard::GuardLevel;
use crate::manager::Policy;
use crate::metrics;

/// Per-service results of a co-location run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Service name.
    pub name: String,
    /// End-to-end latency of each completed query.
    pub query_latencies: Vec<SimTime>,
    /// Queries that missed the QoS target.
    pub qos_violations: usize,
    /// Streaming latency histogram (microseconds), shared with the run's
    /// metrics registry under `query_latency_us.<service>`.
    pub latency_histogram: Arc<Histogram>,
}

impl ServiceReport {
    /// Mean query latency (`None` when no query completed).
    pub fn mean_latency(&self) -> Option<SimTime> {
        (!self.query_latencies.is_empty()).then(|| metrics::mean(&self.query_latencies))
    }

    /// 99th-percentile query latency (`None` when no query completed).
    pub fn p99_latency(&self) -> Option<SimTime> {
        (!self.query_latencies.is_empty()).then(|| metrics::percentile(&self.query_latencies, 99.0))
    }
}

/// Outcome of one co-location run (one or more LC services).
#[derive(Debug)]
pub struct RunReport {
    /// The scheduling policy used.
    pub policy: Policy,
    /// The QoS target the run was configured with.
    pub qos_target: SimTime,
    /// Per-service latency results (see [`RunReport::per_service`]).
    pub(crate) services: Vec<ServiceReport>,
    /// Total useful BE work completed (sum of solo durations of completed
    /// BE kernels).
    pub be_work: SimTime,
    /// BE kernels completed.
    pub be_kernels: u64,
    /// Fused launches performed.
    pub fused_launches: u64,
    /// BE kernels launched via reordering into headroom.
    pub reordered_launches: u64,
    /// Total simulated wall-clock time.
    pub wall: SimTime,
    /// Online model refreshes triggered (>10% prediction error).
    pub model_refreshes: u64,
    /// Device activity timeline, when recording was enabled.
    pub timeline: Option<TimelineRecorder>,
    /// Streaming latency histogram over all services (microseconds).
    /// Bounded-memory observability view; QoS gating still uses the exact
    /// sample-based percentiles.
    pub latency_histogram: Arc<Histogram>,
    /// Run-level metrics: decision counters, injection-budget gauge, and
    /// the per-service latency histograms.
    pub metrics: MetricsRegistry,
    /// QoS-guard ladder steps taken (0 when the guard was off or never
    /// tripped).
    pub guard_steps: u64,
    /// Faults injected by the run's [`crate::fault::FaultPlan`].
    pub faults_injected: u64,
    /// Final guard ladder level (`None` when the guard was off).
    pub guard_level: Option<GuardLevel>,
}

impl RunReport {
    /// Per-service latency results.
    pub fn per_service(&self) -> &[ServiceReport] {
        &self.services
    }

    /// End-to-end latencies of every completed query, concatenated
    /// service-major (a single-service run preserves completion order).
    pub fn query_latencies(&self) -> Vec<SimTime> {
        self.services
            .iter()
            .flat_map(|s| s.query_latencies.iter().copied())
            .collect()
    }

    /// Total completed queries across all services.
    pub fn query_count(&self) -> usize {
        self.services.iter().map(|s| s.query_latencies.len()).sum()
    }

    /// Total queries that missed the QoS target, across all services.
    pub fn qos_violations(&self) -> usize {
        self.services.iter().map(|s| s.qos_violations).sum()
    }

    /// Mean query latency over all services (`None` when no query
    /// completed).
    pub fn mean_latency(&self) -> Option<SimTime> {
        let all = self.query_latencies();
        (!all.is_empty()).then(|| metrics::mean(&all))
    }

    /// 99th-percentile query latency over all services (`None` when no
    /// query completed).
    pub fn p99_latency(&self) -> Option<SimTime> {
        let all = self.query_latencies();
        (!all.is_empty()).then(|| metrics::percentile(&all, 99.0))
    }

    /// BE work completed per second of wall time (the throughput metric
    /// compared across policies in Fig. 14).
    pub fn be_work_rate(&self) -> f64 {
        if self.wall == SimTime::ZERO {
            0.0
        } else {
            self.be_work.as_nanos() as f64 / self.wall.as_nanos() as f64
        }
    }

    /// Whether every query of every service met the QoS target.
    pub fn qos_met(&self) -> bool {
        self.services.iter().all(|s| s.qos_violations == 0)
    }
}

/// The old multi-service report type, merged into [`RunReport`].
#[deprecated(note = "merged into `RunReport`; use `per_service()` for per-service results")]
pub type MultiRunReport = RunReport;

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_trace::MetricsRegistry;

    fn svc(name: &str, lat_ms: &[u64], violations: usize) -> ServiceReport {
        ServiceReport {
            name: name.to_string(),
            query_latencies: lat_ms.iter().map(|m| SimTime::from_millis(*m)).collect(),
            qos_violations: violations,
            latency_histogram: Arc::new(Histogram::new()),
        }
    }

    fn report(services: Vec<ServiceReport>) -> RunReport {
        let registry = MetricsRegistry::new();
        RunReport {
            policy: Policy::Tacker,
            qos_target: SimTime::from_millis(50),
            services,
            be_work: SimTime::ZERO,
            be_kernels: 0,
            fused_launches: 0,
            reordered_launches: 0,
            wall: SimTime::from_millis(100),
            model_refreshes: 0,
            timeline: None,
            latency_histogram: registry.histogram("query_latency_us"),
            metrics: registry,
            guard_steps: 0,
            faults_injected: 0,
            guard_level: None,
        }
    }

    #[test]
    fn empty_run_has_no_percentiles() {
        let r = report(vec![svc("a", &[], 0)]);
        assert_eq!(r.p99_latency(), None);
        assert_eq!(r.mean_latency(), None);
        assert_eq!(r.per_service()[0].p99_latency(), None);
        assert_eq!(r.query_count(), 0);
        assert!(r.qos_met());
    }

    #[test]
    fn aggregates_fold_over_services() {
        let r = report(vec![svc("a", &[10, 20], 1), svc("b", &[30], 2)]);
        assert_eq!(r.query_count(), 3);
        assert_eq!(r.qos_violations(), 3);
        assert_eq!(r.mean_latency(), Some(SimTime::from_millis(20)));
        assert_eq!(r.p99_latency(), Some(SimTime::from_millis(30)));
        assert_eq!(
            r.query_latencies(),
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30)
            ]
        );
        assert!(!r.qos_met());
    }
}
