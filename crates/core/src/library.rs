//! The offline fusion library (§V-C, §VI-C, §VIII-A).
//!
//! For each fusable (Tensor kernel, CUDA kernel) pair the library:
//!
//! 1. enumerates every feasible fusion ratio ([`tacker_fuser::enumerate_configs`]);
//! 2. measures all candidates and the sequential execution at a balanced
//!    profiling workload, keeping the fastest (or declining to fuse when
//!    sequential wins — §V-C);
//! 3. profiles the winning fused kernel at the paper's four load ratios
//!    (10%, 20%, 180%, 190%) and fits the two-stage duration model (§VI-C);
//! 4. serves duration predictions to the online manager and refreshes
//!    models when online error exceeds the 10% threshold.
//!
//! Pairs are prepared lazily and cached; a pair whose Tensor kernel is a
//! black-box cuDNN implementation never enters the library (its source is
//! unavailable for fusion).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tacker_fuser::{
    enumerate_configs, fuse_flexible, select_best, FusedKernel, FusionConfig, FusionDecision,
    PackPriority,
};
use tacker_kernel::{KernelId, KernelKind, SimTime, SmCapacity};
use tacker_predictor::FusedPairModel;
use tacker_sim::ExecutablePlan;
use tacker_workloads::WorkloadKernel;

use crate::error::TackerError;
use crate::profile::{work_feature, KernelProfiler};

/// Model-fitting load ratios. The paper profiles four (10%, 20%, 180%,
/// 190%, §VI-C) and leans on online refresh; we add three mid-curve points
/// so the *initial* model is already reliable for scheduling — a
/// documented robustness deviation (see DESIGN.md).
pub const PROFILE_RATIOS: [f64; 7] = [0.1, 0.2, 0.7, 1.0, 1.3, 1.8, 1.9];

/// A prepared pair: the best fused kernel and its duration model.
#[derive(Debug, Clone)]
pub struct PairEntry {
    /// The winning fused kernel.
    pub fused: FusedKernel,
    /// The fitted two-stage load-ratio model.
    pub model: FusedPairModel,
    /// Offline-measured fused duration at the balanced profiling workload.
    pub offline_fused: SimTime,
    /// Offline-measured sequential duration of the same workload.
    pub offline_sequential: SimTime,
    /// Online launches where fusion lost to sequential execution. After
    /// [`PairEntry::MAX_STRIKES`] the pair is no longer considered — the
    /// paper's "this CD kernel would not be considered for fusion" rule
    /// (§VIII-I).
    pub strikes: u32,
}

impl PairEntry {
    /// Strikes after which a pair is blacklisted.
    pub const MAX_STRIKES: u32 = 2;

    /// Whether the pair is still eligible for fusion.
    pub fn eligible(&self) -> bool {
        self.strikes < Self::MAX_STRIKES
    }

    /// Records the outcome of an online fused launch: refreshes the model
    /// on >10% error and strikes the pair when fusion lost to sequential
    /// execution *or* ran far over its prediction (a pair the model cannot
    /// be trusted on consumes headroom it never accounted for). Returns
    /// whether the model was refreshed.
    pub fn observe_outcome(&mut self, x_tc: SimTime, x_cd: SimTime, actual: SimTime) -> bool {
        let predicted = self.model.predict(x_tc, x_cd);
        if actual > x_tc + x_cd || actual > predicted.mul_f64(1.5) {
            self.strikes += 1;
        }
        self.model.observe(x_tc, x_cd, actual)
    }
}

/// Library key: the kernel pair plus per-kernel work-scale buckets, so a
/// GEMM definition reused at very different shapes gets its own models per
/// scale class (each configuration is effectively a distinct kernel).
type PairKey = (KernelId, KernelId, u32, u32);

fn work_bucket(wk: &WorkloadKernel) -> u32 {
    (work_feature(wk).max(1.0) as u64).ilog2() / 2
}

/// The fusion library.
pub struct FusionLibrary {
    profiler: Arc<KernelProfiler>,
    pack: PackPriority,
    /// Worker threads for candidate measurement and ratio profiling
    /// (`0` = every core). Measurement is pure and memoized, so the thread
    /// count never changes which candidate wins.
    jobs: usize,
    entries: Mutex<HashMap<PairKey, Option<Arc<Mutex<PairEntry>>>>>,
    /// Memoized fused-kernel construction, keyed by the component kernels'
    /// content-derived ids and the fusion ratio. `fuse_flexible` is
    /// deterministic and content ids are stable across runs, so a ratio
    /// already built for this (TC, CD) pair — by any caller, at any work
    /// bucket — is reused instead of re-running the AST transform.
    fused_defs: Mutex<HashMap<(KernelId, KernelId, FusionConfig), FusedKernel>>,
}

impl FusionLibrary {
    /// Creates a library over a profiler (and its device).
    pub fn new(profiler: Arc<KernelProfiler>) -> FusionLibrary {
        FusionLibrary {
            profiler,
            pack: PackPriority::TensorFirst,
            jobs: 0,
            entries: Mutex::new(HashMap::new()),
            fused_defs: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a library with an explicit packing priority (ablation).
    pub fn with_priority(profiler: Arc<KernelProfiler>, pack: PackPriority) -> FusionLibrary {
        FusionLibrary {
            profiler,
            pack,
            jobs: 0,
            entries: Mutex::new(HashMap::new()),
            fused_defs: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the worker-thread count for offline preparation (`0` = every
    /// core).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Orients a kernel pair as (tensor, cuda) if possible.
    pub fn orient<'a>(
        a: &'a WorkloadKernel,
        b: &'a WorkloadKernel,
    ) -> Option<(&'a WorkloadKernel, &'a WorkloadKernel)> {
        match (a.def.kind(), b.def.kind()) {
            (KernelKind::Tensor, KernelKind::Cuda) => Some((a, b)),
            (KernelKind::Cuda, KernelKind::Tensor) => Some((b, a)),
            _ => None,
        }
    }

    /// A grid for `cd` whose predicted duration is `ratio ×` the predicted
    /// duration of `tc`, derived from the per-kernel LR models.
    fn cd_grid_for_ratio(
        &self,
        tc: &WorkloadKernel,
        cd: &WorkloadKernel,
        ratio: f64,
    ) -> Result<u64, TackerError> {
        let t_tc = self.profiler.predict(tc)?;
        let t_cd_unit = self.profiler.predict(cd)?;
        if t_cd_unit == SimTime::ZERO {
            return Ok(cd.grid.max(1));
        }
        let scale = ratio * t_tc.as_nanos() as f64 / t_cd_unit.as_nanos() as f64;
        Ok(((cd.grid as f64 * scale).round() as u64).max(1))
    }

    /// Builds (or retrieves) the fused kernel for one ratio. Infeasible
    /// ratios yield `None` and are cheap enough not to cache.
    fn fused_for(
        &self,
        tc: &WorkloadKernel,
        cd: &WorkloadKernel,
        cfg: FusionConfig,
        sm: &SmCapacity,
    ) -> Option<FusedKernel> {
        let key = (tc.def.id(), cd.def.id(), cfg);
        if let Some(hit) = self
            .fused_defs
            .lock()
            .expect("fused defs poisoned")
            .get(&key)
        {
            return Some(hit.clone());
        }
        let fused = fuse_flexible(&tc.def, &cd.def, cfg, sm).ok()?;
        self.fused_defs
            .lock()
            .expect("fused defs poisoned")
            .insert(key, fused.clone());
        Some(fused)
    }

    /// Measures the fused kernel for concrete component launches.
    fn measure_fused(
        &self,
        fused: &FusedKernel,
        tc: &WorkloadKernel,
        cd: &WorkloadKernel,
        cd_grid: u64,
    ) -> Result<SimTime, TackerError> {
        let launch = fused.launch(tc.grid, cd_grid, &tc.bindings, &cd.bindings);
        let plan = ExecutablePlan::from_launch(self.profiler.device().spec(), &launch)?;
        Ok(self.profiler.device().run_plan(&plan)?.duration)
    }

    /// Prepares (or retrieves) the entry for an oriented pair, using the
    /// given launches as the profiling workload.
    ///
    /// Returns `None` when the pair is not fusable or the offline
    /// measurement decided sequential execution is faster.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors; fusion infeasibility is *not* an error
    /// (it yields `None`).
    pub fn prepare(
        &self,
        tc: &WorkloadKernel,
        cd: &WorkloadKernel,
    ) -> Result<Option<Arc<Mutex<PairEntry>>>, TackerError> {
        let key = (tc.def.id(), cd.def.id(), work_bucket(tc), work_bucket(cd));
        if let Some(cached) = self.entries.lock().expect("entries poisoned").get(&key) {
            return Ok(cached.clone());
        }
        let entry = self.build_entry(tc, cd)?;
        let entry = entry.map(|e| Arc::new(Mutex::new(e)));
        self.entries
            .lock()
            .expect("entries poisoned")
            .insert(key, entry.clone());
        Ok(entry)
    }

    fn build_entry(
        &self,
        tc: &WorkloadKernel,
        cd: &WorkloadKernel,
    ) -> Result<Option<PairEntry>, TackerError> {
        if tc.def.kind() != KernelKind::Tensor || cd.def.kind() != KernelKind::Cuda {
            return Ok(None);
        }
        // Black-box kernels (cuDNN) cannot be fused — no source (§VIII-H).
        if tc.def.is_opaque() || cd.def.is_opaque() {
            return Ok(None);
        }
        let spec = self.profiler.device().spec().clone();
        let configs = enumerate_configs(&tc.def, &cd.def, &spec.sm, self.pack);
        if configs.is_empty() {
            return Ok(None);
        }
        // Balanced profiling workload: CD sized to match the TC duration.
        let cd_grid = self.cd_grid_for_ratio(tc, cd, 1.0)?;
        let mut cd_balanced = cd.clone();
        cd_balanced.grid = cd_grid;
        let sequential = self.profiler.measure(tc)? + self.profiler.measure(&cd_balanced)?;

        let candidates: Vec<FusedKernel> = configs
            .into_iter()
            .filter_map(|cfg| self.fused_for(tc, cd, cfg, &spec.sm))
            .collect();
        // Measure every candidate up front on the work pool (the hottest
        // offline fan-out: one full simulation per feasible ratio), then
        // replay the measurements into the selector in candidate order —
        // `select_best` sees exactly what a serial measurement loop would
        // have produced.
        let measured = tacker_par::par_map(self.jobs, &candidates, |_, cand| {
            self.measure_fused(cand, tc, cd, cd_grid).ok()
        });
        let mut measured = measured.into_iter();
        let decision = select_best(candidates, sequential, |_| {
            measured.next().expect("one measurement per candidate")
        })?;
        let FusionDecision::Fuse {
            kernel,
            fused_duration,
            sequential_duration,
        } = decision
        else {
            return Ok(None);
        };

        // Fit the two-stage model at the paper's profiling ratios; the
        // ratio points are independent measurements, so they fan out over
        // the work pool too and are joined back in ratio order.
        let x_tc = self.profiler.predict(tc)?;
        let samples: Vec<(f64, f64)> =
            tacker_par::try_par_map(self.jobs, &PROFILE_RATIOS, |_, &ratio| {
                let g = self.cd_grid_for_ratio(tc, cd, ratio)?;
                let t_fuse = self.measure_fused(&kernel, tc, cd, g)?;
                let mut cd_scaled = cd.clone();
                cd_scaled.grid = g;
                let x_cd = self.profiler.predict(&cd_scaled)?;
                Ok::<_, TackerError>((x_cd.ratio(x_tc), t_fuse.ratio(x_tc)))
            })?;
        // A pair whose duration cannot be modelled (e.g. degenerate
        // profiling ratios for very coarse CD kernels) is not fused: no
        // model means no QoS guarantee.
        let Ok(model) = FusedPairModel::fit(
            format!("{}+{}", kernel.tc_name(), kernel.cd_name()),
            &samples,
        ) else {
            return Ok(None);
        };
        Ok(Some(PairEntry {
            fused: kernel,
            model,
            offline_fused: fused_duration,
            offline_sequential: sequential_duration,
            strikes: 0,
        }))
    }

    /// Number of prepared pairs (including declined ones).
    pub fn prepared_pairs(&self) -> usize {
        self.entries.lock().expect("entries poisoned").len()
    }

    /// Number of memoized fused-kernel constructions (one per distinct
    /// `(tc_id, cd_id, ratio)` the library has built).
    pub fn cached_fused_defs(&self) -> usize {
        self.fused_defs.lock().expect("fused defs poisoned").len()
    }

    /// Number of pairs that fused (entries with a kernel).
    pub fn fused_pairs(&self) -> usize {
        self.entries
            .lock()
            .expect("entries poisoned")
            .values()
            .filter(|v| v.is_some())
            .count()
    }
}

impl std::fmt::Debug for FusionLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusionLibrary")
            .field("prepared", &self.prepared_pairs())
            .field("fused", &self.fused_pairs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::{Device, GpuSpec};
    use tacker_workloads::gemm::{gemm_workload, GemmShape};
    use tacker_workloads::parboil::Benchmark;

    fn setup() -> (Arc<KernelProfiler>, FusionLibrary) {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let profiler = Arc::new(KernelProfiler::new(device));
        let lib = FusionLibrary::new(Arc::clone(&profiler));
        (profiler, lib)
    }

    fn tc_kernel() -> WorkloadKernel {
        let def = tacker_workloads::dnn::compile::shared_gemm();
        gemm_workload(&def, GemmShape::new(2048, 2048, 1024))
    }

    #[test]
    fn orientation() {
        let tc = tc_kernel();
        let cd = Benchmark::Cutcp.task()[0].clone();
        assert!(FusionLibrary::orient(&tc, &cd).is_some());
        assert!(FusionLibrary::orient(&cd, &tc).is_some());
        assert!(FusionLibrary::orient(&cd, &cd).is_none());
    }

    #[test]
    fn prepare_builds_entry_with_two_stage_model() {
        let (_, lib) = setup();
        let tc = tc_kernel();
        let cd = Benchmark::Cutcp.task()[0].clone();
        let entry = lib.prepare(&tc, &cd).unwrap().expect("pair should fuse");
        let e = entry.lock().unwrap();
        assert!(e.offline_fused < e.offline_sequential);
        let infl = e.model.opportune_load_ratio();
        assert!(infl > 0.0 && infl < 2.5, "inflection {infl}");
        // The model predicts something sane at ratio 1.
        let x_tc = SimTime::from_micros(100);
        let pred = e.model.predict(x_tc, x_tc);
        assert!(pred >= x_tc.mul_f64(0.8));
        assert!(pred <= x_tc.mul_f64(2.2));
    }

    #[test]
    fn prepare_is_cached() {
        let (_, lib) = setup();
        let tc = tc_kernel();
        let cd = Benchmark::Cutcp.task()[0].clone();
        lib.prepare(&tc, &cd).unwrap();
        lib.prepare(&tc, &cd).unwrap();
        assert_eq!(lib.prepared_pairs(), 1);
        assert_eq!(lib.fused_pairs(), 1);
    }

    #[test]
    fn parallel_preparation_matches_serial() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let tc = tc_kernel();
        let cd = Benchmark::Cutcp.task()[0].clone();
        let serial = {
            let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
            let lib = FusionLibrary::new(profiler).with_jobs(1);
            lib.prepare(&tc, &cd).unwrap().expect("fuses")
        };
        let parallel = {
            let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
            let lib = FusionLibrary::new(profiler).with_jobs(4);
            lib.prepare(&tc, &cd).unwrap().expect("fuses")
        };
        let s = serial.lock().unwrap();
        let p = parallel.lock().unwrap();
        assert_eq!(s.fused.config(), p.fused.config());
        assert_eq!(s.offline_fused, p.offline_fused);
        assert_eq!(s.offline_sequential, p.offline_sequential);
        assert_eq!(
            s.model.opportune_load_ratio(),
            p.model.opportune_load_ratio()
        );
    }

    #[test]
    fn non_fusable_pairs_yield_none() {
        let (_, lib) = setup();
        let cd1 = Benchmark::Cutcp.task()[0].clone();
        let cd2 = Benchmark::Mriq.task()[0].clone();
        assert!(lib.prepare(&cd1, &cd2).unwrap().is_none());
    }
}
