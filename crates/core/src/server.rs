//! The co-location server: LC queries under Poisson load plus endless BE
//! task streams (§VIII-B).
//!
//! Queries of the LC service arrive in a Poisson process at a configured
//! fraction of the service's peak supported load; each BE application
//! replays its task-iteration kernels forever. The server executes
//! non-preemptively (one kernel or fused kernel on the device at a time,
//! like the real schedulers built on MPS) and drives the
//! [`KernelManager`] at every completion.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tacker_kernel::SimTime;
use tacker_sim::{Device, ExecutablePlan, TimelineRecorder};
use tacker_trace::{Histogram, MetricsRegistry, NoopSink, TraceEvent, TraceSink};
use tacker_workloads::{BeApp, LcService, WorkloadKernel};

use crate::config::ExperimentConfig;
use crate::error::TackerError;
use crate::library::FusionLibrary;
use crate::manager::{Decision, KernelManager, Policy};
use crate::metrics;
use crate::profile::KernelProfiler;

/// Outcome of one co-location run.
#[derive(Debug)]
pub struct RunReport {
    /// The scheduling policy used.
    pub policy: Policy,
    /// End-to-end latency of each completed LC query.
    pub query_latencies: Vec<SimTime>,
    /// The QoS target the run was configured with.
    pub qos_target: SimTime,
    /// Number of queries that missed the QoS target.
    pub qos_violations: usize,
    /// Total useful BE work completed (sum of solo durations of completed
    /// BE kernels).
    pub be_work: SimTime,
    /// BE kernels completed.
    pub be_kernels: u64,
    /// Fused launches performed.
    pub fused_launches: u64,
    /// BE kernels launched via reordering into headroom.
    pub reordered_launches: u64,
    /// Total simulated wall-clock time.
    pub wall: SimTime,
    /// Online model refreshes triggered (>10% prediction error).
    pub model_refreshes: u64,
    /// Device activity timeline, when recording was enabled.
    pub timeline: Option<TimelineRecorder>,
    /// Streaming latency histogram (microseconds). Bounded-memory
    /// observability view; QoS gating still uses the exact
    /// sample-based percentiles below.
    pub latency_histogram: Arc<Histogram>,
    /// Run-level metrics: decision counters, injection-budget gauge, and
    /// the per-service latency histograms.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Mean query latency.
    pub fn mean_latency(&self) -> SimTime {
        metrics::mean(&self.query_latencies)
    }

    /// 99th-percentile query latency.
    pub fn p99_latency(&self) -> SimTime {
        metrics::percentile(&self.query_latencies, 99.0)
    }

    /// BE work completed per second of wall time (the throughput metric
    /// compared across policies in Fig. 14).
    pub fn be_work_rate(&self) -> f64 {
        if self.wall == SimTime::ZERO {
            0.0
        } else {
            self.be_work.as_nanos() as f64 / self.wall.as_nanos() as f64
        }
    }

    /// Whether every query met the QoS target.
    pub fn qos_met(&self) -> bool {
        self.qos_violations == 0
    }
}

/// The solo (un-co-located) duration of one LC query: the sum of its
/// kernels' measured durations.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn solo_query_duration(
    profiler: &KernelProfiler,
    lc: &LcService,
) -> Result<SimTime, TackerError> {
    let mut total = SimTime::ZERO;
    for k in lc.query_kernels() {
        total += profiler.measure(k)?;
    }
    Ok(total)
}

/// Finds the service's *peak supported load* (§VIII-B): the highest
/// Poisson arrival rate whose 99%-ile latency still meets the QoS target
/// when the service runs alone. Returns the corresponding mean
/// inter-arrival time. Results are cached per (service, config, device).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn calibrate_peak_interarrival(
    device: &Arc<Device>,
    lc: &LcService,
    config: &ExperimentConfig,
) -> Result<SimTime, TackerError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    /// (service, device, qos ns, queries, seed) → peak inter-arrival.
    type CalibrationKey = (String, String, u64, usize, u64);
    static CACHE: OnceLock<Mutex<HashMap<CalibrationKey, SimTime>>> = OnceLock::new();
    // Calibration replays the experiment's own arrival sample (same seed
    // and query count) with BE disabled, so the chosen load provably meets
    // QoS for the arrivals the experiment will see — the paper's "without
    // causing QoS violation" condition.
    let config = &ExperimentConfig {
        record_timeline: false,
        ..config.clone()
    };
    let key = (
        lc.name().to_string(),
        device.spec().name.clone(),
        config.qos_target.as_nanos(),
        config.queries,
        config.seed,
    );
    if let Some(hit) = CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("calibration cache poisoned")
        .get(&key)
    {
        return Ok(*hit);
    }
    let profiler = KernelProfiler::new(Arc::clone(device));
    let solo = solo_query_duration(&profiler, lc)?;
    let meets = |mult: f64| -> Result<bool, TackerError> {
        let r = run_colocation_at(device, lc, &[], Policy::LcOnly, config, solo.mul_f64(mult))?;
        Ok(r.p99_latency() <= config.qos_target)
    };
    // Bisect the inter-arrival multiplier: larger = lighter load.
    let (mut lo, mut hi) = (1.0_f64, 16.0_f64);
    if !meets(hi)? {
        // Degenerate service: even a light load misses QoS.
        let v = solo.mul_f64(hi);
        CACHE
            .get_or_init(Default::default)
            .lock()
            .expect("calibration cache poisoned")
            .insert(key, v);
        return Ok(v);
    }
    if meets(lo)? {
        hi = lo;
    } else {
        for _ in 0..10 {
            let mid = 0.5 * (lo + hi);
            if meets(mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }
    let v = solo.mul_f64(hi);
    CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("calibration cache poisoned")
        .insert(key, v);
    Ok(v)
}

struct ActiveQuery {
    /// Index of the owning service.
    service: usize,
    arrival: SimTime,
    deadline: SimTime,
    pending: VecDeque<usize>, // indices into the service's kernel sequence
    remaining_pred: SimTime,
}

struct BeState {
    app: BeApp,
    queue: VecDeque<WorkloadKernel>,
}

impl BeState {
    fn head(&mut self) -> Option<WorkloadKernel> {
        if self.queue.is_empty() {
            // Endless task stream: refill with the next iteration.
            self.queue.extend(self.app.task_kernels().iter().cloned());
        }
        self.queue.front().cloned()
    }

    fn pop(&mut self) {
        self.queue.pop_front();
    }
}

/// Runs one co-location experiment: `lc` under Poisson load against the
/// given BE applications, with the chosen policy.
///
/// # Errors
///
/// Propagates simulation, fusion and prediction errors, or a
/// [`TackerError::Config`] when the service has no kernels.
pub fn run_colocation(
    device: &Arc<Device>,
    lc: &LcService,
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
) -> Result<RunReport, TackerError> {
    let peak = calibrate_peak_interarrival(device, lc, config)?;
    let mean_interarrival = peak.mul_f64(1.0 / config.load_factor.max(1e-6));
    run_colocation_at(device, lc, be_apps, policy, config, mean_interarrival)
}

/// [`run_colocation`] with an explicit mean query inter-arrival time
/// (skipping peak-load calibration).
///
/// # Errors
///
/// Same as [`run_colocation`].
pub fn run_colocation_at(
    device: &Arc<Device>,
    lc: &LcService,
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
    mean_interarrival: SimTime,
) -> Result<RunReport, TackerError> {
    let multi = run_multi_colocation_at(
        device,
        &[ServiceLoad {
            lc: lc.clone(),
            mean_interarrival,
            seed: config.seed,
        }],
        be_apps,
        policy,
        config,
    )?;
    Ok(multi.into_single())
}

/// [`run_colocation`] with a trace sink receiving runtime events: one
/// [`TraceEvent::Decision`] per scheduling point, a
/// [`TraceEvent::KernelRetired`] per device launch (with predicted vs.
/// actual duration), plus fusion rejections, model refreshes, and query
/// completions.
///
/// # Errors
///
/// Same as [`run_colocation`].
pub fn run_colocation_traced(
    device: &Arc<Device>,
    lc: &LcService,
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<RunReport, TackerError> {
    let peak = calibrate_peak_interarrival(device, lc, config)?;
    let mean_interarrival = peak.mul_f64(1.0 / config.load_factor.max(1e-6));
    let multi = run_multi_colocation_at_traced(
        device,
        &[ServiceLoad {
            lc: lc.clone(),
            mean_interarrival,
            seed: config.seed,
        }],
        be_apps,
        policy,
        config,
        sink,
    )?;
    Ok(multi.into_single())
}

/// One LC service with its configured load for a multi-service run.
#[derive(Debug, Clone)]
pub struct ServiceLoad {
    /// The service.
    pub lc: LcService,
    /// Mean query inter-arrival time.
    pub mean_interarrival: SimTime,
    /// Seed of this service's arrival stream.
    pub seed: u64,
}

/// Per-service results of a multi-service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Service name.
    pub name: String,
    /// End-to-end latency of each completed query.
    pub query_latencies: Vec<SimTime>,
    /// Queries that missed the QoS target.
    pub qos_violations: usize,
    /// Streaming latency histogram (microseconds), shared with the run's
    /// metrics registry under `query_latency_us.<service>`.
    pub latency_histogram: Arc<Histogram>,
}

impl ServiceReport {
    /// Mean query latency.
    pub fn mean_latency(&self) -> SimTime {
        metrics::mean(&self.query_latencies)
    }

    /// 99th-percentile query latency.
    pub fn p99_latency(&self) -> SimTime {
        metrics::percentile(&self.query_latencies, 99.0)
    }
}

/// Outcome of a co-location run with one *or more* LC services
/// (§VII-B-2's multiple-active-queries case, across services).
#[derive(Debug)]
pub struct MultiRunReport {
    /// The scheduling policy used.
    pub policy: Policy,
    /// The QoS target.
    pub qos_target: SimTime,
    /// Per-service latency results.
    pub services: Vec<ServiceReport>,
    /// Total useful BE work completed.
    pub be_work: SimTime,
    /// BE kernels completed.
    pub be_kernels: u64,
    /// Fused launches performed.
    pub fused_launches: u64,
    /// BE kernels launched via reordering.
    pub reordered_launches: u64,
    /// Total simulated wall-clock time.
    pub wall: SimTime,
    /// Online model refreshes triggered.
    pub model_refreshes: u64,
    /// Device activity timeline, when recording was enabled.
    pub timeline: Option<TimelineRecorder>,
    /// Run-level metrics: decision counters, injection-budget gauge, and
    /// the per-service latency histograms.
    pub metrics: MetricsRegistry,
}

impl MultiRunReport {
    /// BE work completed per second of wall time.
    pub fn be_work_rate(&self) -> f64 {
        if self.wall == SimTime::ZERO {
            0.0
        } else {
            self.be_work.as_nanos() as f64 / self.wall.as_nanos() as f64
        }
    }

    /// Whether every query of every service met the QoS target.
    pub fn qos_met(&self) -> bool {
        self.services.iter().all(|s| s.qos_violations == 0)
    }

    /// Collapses a single-service report into the single-service type.
    ///
    /// # Panics
    ///
    /// Panics unless the run had exactly one service.
    pub fn into_single(mut self) -> RunReport {
        assert_eq!(self.services.len(), 1, "into_single needs one service");
        let svc = self.services.pop().expect("one service");
        RunReport {
            policy: self.policy,
            query_latencies: svc.query_latencies,
            qos_target: self.qos_target,
            qos_violations: svc.qos_violations,
            be_work: self.be_work,
            be_kernels: self.be_kernels,
            fused_launches: self.fused_launches,
            reordered_launches: self.reordered_launches,
            wall: self.wall,
            model_refreshes: self.model_refreshes,
            timeline: self.timeline,
            latency_histogram: svc.latency_histogram,
            metrics: self.metrics,
        }
    }
}

/// Runs a co-location experiment with multiple LC services, each under its
/// own calibrated 80%-of-peak load, sharing the device with the BE
/// applications.
///
/// # Errors
///
/// Same as [`run_colocation`].
pub fn run_multi_colocation(
    device: &Arc<Device>,
    lcs: &[LcService],
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
) -> Result<MultiRunReport, TackerError> {
    run_multi_colocation_traced(device, lcs, be_apps, policy, config, Arc::new(NoopSink))
}

/// [`run_multi_colocation`] with a trace sink (see
/// [`run_colocation_traced`]).
///
/// # Errors
///
/// Same as [`run_colocation`].
pub fn run_multi_colocation_traced(
    device: &Arc<Device>,
    lcs: &[LcService],
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<MultiRunReport, TackerError> {
    let mut services = Vec::with_capacity(lcs.len());
    for (i, lc) in lcs.iter().enumerate() {
        let peak = calibrate_peak_interarrival(device, lc, config)?;
        services.push(ServiceLoad {
            lc: lc.clone(),
            // Each service carries an equal share of the configured load so
            // the combined LC demand stays feasible.
            mean_interarrival: peak.mul_f64(lcs.len() as f64 / config.load_factor.max(1e-6)),
            seed: config.seed.wrapping_add(i as u64),
        });
    }
    run_multi_colocation_at_traced(device, &services, be_apps, policy, config, sink)
}

/// [`run_multi_colocation`] with explicit per-service loads.
///
/// # Errors
///
/// Same as [`run_colocation`].
pub fn run_multi_colocation_at(
    device: &Arc<Device>,
    services: &[ServiceLoad],
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
) -> Result<MultiRunReport, TackerError> {
    run_multi_colocation_at_traced(
        device,
        services,
        be_apps,
        policy,
        config,
        Arc::new(NoopSink),
    )
}

/// [`run_multi_colocation_at`] with a trace sink (see
/// [`run_colocation_traced`]).
///
/// # Errors
///
/// Same as [`run_colocation`].
pub fn run_multi_colocation_at_traced(
    device: &Arc<Device>,
    services: &[ServiceLoad],
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<MultiRunReport, TackerError> {
    if services.is_empty() || services.iter().any(|s| s.lc.query_kernels().is_empty()) {
        return Err(TackerError::Config {
            reason: "need at least one LC service, each with kernels".to_string(),
        });
    }
    let tracing = sink.enabled();
    let registry = MetricsRegistry::new();
    let profiler = Arc::new(KernelProfiler::with_sink(
        Arc::clone(device),
        Arc::clone(&sink),
    ));
    let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)).with_jobs(config.jobs));
    let manager = KernelManager::with_sink(
        Arc::clone(&profiler),
        Arc::clone(&library),
        policy,
        Arc::clone(&sink),
    );
    // Metric handles resolved once; hot-loop updates are atomic ops.
    let m_decisions = registry.counter("decisions");
    let m_violations = registry.counter("qos_violations");
    let m_budget = registry.gauge("injection_budget_ns");
    let m_latency_all = registry.histogram("query_latency_us");

    // Per-service arrival streams: exponential gaps with bounded burstiness
    // (clipped to [0.5, 2.2]x the mean), normalized so the realized mean
    // equals the target. An unbounded open-loop Poisson stream at
    // meaningful load has latency tails that *no* non-preemptive scheduler
    // can keep under a 50 ms QoS; production inference frontends pace
    // dispatch the same way (see DESIGN.md SS5).
    let mut arrivals_per_service: Vec<Vec<SimTime>> = Vec::with_capacity(services.len());
    for svc in services {
        let mut rng = StdRng::seed_from_u64(svc.seed);
        let mut gaps: Vec<f64> = (0..config.queries)
            .map(|_| (-(rng.random::<f64>().max(1e-12)).ln()).clamp(0.5, 2.2))
            .collect();
        let mean_gap: f64 = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        for g in &mut gaps {
            *g /= mean_gap.max(1e-12);
        }
        let mut arrivals = Vec::with_capacity(config.queries);
        let mut t = SimTime::ZERO;
        for g in gaps {
            t += svc.mean_interarrival.mul_f64(g);
            arrivals.push(t);
        }
        arrivals_per_service.push(arrivals);
    }

    // Warm the profiler with one measurement of every LC kernel (the
    // paper's "historical data": these exact kernels recur every query), so
    // remaining-time accounting predicts them exactly.
    let mut kernel_preds: Vec<Vec<SimTime>> = Vec::with_capacity(services.len());
    let mut query_total_pred: Vec<SimTime> = Vec::with_capacity(services.len());
    for svc in services {
        for k in svc.lc.query_kernels() {
            profiler.measure(k)?;
        }
        let preds: Vec<SimTime> = svc
            .lc
            .query_kernels()
            .iter()
            .map(|k| profiler.predict(k))
            .collect::<Result<_, _>>()?;
        query_total_pred.push(preds.iter().copied().sum());
        kernel_preds.push(preds);
    }

    let mut be_states: Vec<BeState> = be_apps
        .iter()
        .map(|a| BeState {
            app: a.clone(),
            queue: VecDeque::new(),
        })
        .collect();

    let mut now = SimTime::ZERO;
    let mut next_arrival: Vec<usize> = vec![0; services.len()];
    let mut active: VecDeque<ActiveQuery> = VecDeque::new();
    // Best-effort injection budget. Headroom alone is blind to *future*
    // arrivals: BE work injected into a busy period delays every query that
    // joins that busy period later, 1:1. The budget therefore replenishes
    // only during genuinely idle time and is capped at a small fraction of
    // the QoS target, bounding how far any arrival cluster can be
    // stretched by work injected before the cluster was visible.
    // Signed, in nanoseconds: over-predictions drive it negative (debt),
    // blocking further injection until idle time repays it.
    let budget_cap = config.qos_target.mul_f64(0.08).as_nanos() as i128;
    let mut budget: i128 = budget_cap * 3 / 10;
    // Safety margin absorbing prediction noise when filling headroom.
    let safety = config.qos_target.mul_f64(0.10);
    let mut report = MultiRunReport {
        policy,
        qos_target: config.qos_target,
        services: services
            .iter()
            .map(|svc| ServiceReport {
                name: svc.lc.name().to_string(),
                query_latencies: Vec::with_capacity(config.queries),
                qos_violations: 0,
                latency_histogram: registry
                    .histogram(&format!("query_latency_us.{}", svc.lc.name())),
            })
            .collect(),
        be_work: SimTime::ZERO,
        be_kernels: 0,
        fused_launches: 0,
        reordered_launches: 0,
        wall: SimTime::ZERO,
        model_refreshes: 0,
        timeline: config.record_timeline.then(TimelineRecorder::new),
        metrics: registry.clone(),
    };

    let run_kernel = |wk: &WorkloadKernel| -> Result<tacker_sim::KernelRun, TackerError> {
        Ok(device.run_launch(&wk.launch())?)
    };
    let total_queries = config.queries * services.len();
    let mut completed = 0usize;

    loop {
        // Admit arrivals from every service, oldest first.
        let mut due: Vec<(SimTime, usize)> = Vec::new();
        for (si, arrivals) in arrivals_per_service.iter().enumerate() {
            while next_arrival[si] < arrivals.len() && arrivals[next_arrival[si]] <= now {
                due.push((arrivals[next_arrival[si]], si));
                next_arrival[si] += 1;
            }
        }
        due.sort();
        for (arrival, si) in due {
            active.push_back(ActiveQuery {
                service: si,
                arrival,
                deadline: arrival + config.qos_target,
                pending: (0..services[si].lc.query_kernels().len()).collect(),
                remaining_pred: query_total_pred[si],
            });
        }
        if active.is_empty() && completed >= total_queries {
            break;
        }

        // QoS headroom: the tightest slack over all active queries, with
        // each query reserving the remaining GPU time of itself and every
        // earlier query (Equation 9), minus a small safety margin for
        // prediction noise, and capped by the injection budget.
        let mut headroom = SimTime::from_millis(u64::MAX / 2_000_000);
        let mut cum = SimTime::ZERO;
        for q in &active {
            cum += q.remaining_pred;
            let slack = q
                .deadline
                .saturating_sub(now)
                .saturating_sub(cum)
                .saturating_sub(safety);
            headroom = headroom.min(slack);
        }
        if active.is_empty() {
            headroom = SimTime::ZERO;
        }
        // Reordering whole BE kernels into the headroom is what stretches
        // busy periods, so it is budget-capped. Fusion's extra time is an
        // order of magnitude smaller per unit of BE work, so it gets a
        // small grace on top of the budget — but its actual cost is still
        // charged, driving the budget into debt that blocks further
        // injection until idle time repays it.
        let budget_time = SimTime::from_nanos(budget.max(0) as u64);
        let reorder_headroom = headroom.min(budget_time);
        // Fusion may run the budget into bounded debt: its extras are small
        // and high-leverage, so a per-busy-period allowance (the grace, up
        // to the debt floor) keeps cheap fusions flowing while expensive
        // ones are cut off quickly.
        let grace = config.qos_target.mul_f64(0.01);
        let debt_floor = -(config.qos_target.mul_f64(0.05).as_nanos() as i128);
        let fusion_headroom = if budget > debt_floor {
            headroom.min(budget_time + grace)
        } else {
            SimTime::ZERO
        };

        let lc_head = active
            .front()
            .and_then(|q| q.pending.front().map(|&i| (q.service, i)))
            .map(|(si, i)| &services[si].lc.query_kernels()[i]);
        let be_heads: Vec<Option<WorkloadKernel>> = if policy.best_effort_enabled() {
            be_states.iter_mut().map(|s| s.head()).collect()
        } else {
            vec![None; be_states.len()]
        };

        let was_idle = active.is_empty();
        manager.set_now(now);
        m_decisions.inc();
        m_budget.set(budget as f64);
        // With multiple active queries the oldest executes first and the
        // Equation 9 headroom above already reserves the remaining GPU time
        // of every query, so fusion stays enabled (§VII-B-2's accounting).
        let decision =
            manager.decide(lc_head, fusion_headroom, reorder_headroom, &be_heads, false)?;
        // One KernelRetired event per device launch, carrying the
        // manager's predicted duration next to the realized one.
        let retire = |sink: &dyn TraceSink,
                      run: &tacker_sim::KernelRun,
                      label: &str,
                      end: SimTime,
                      predicted: SimTime| {
            sink.record(TraceEvent::KernelRetired {
                kernel: run.name.clone(),
                label: label.into(),
                start: end.saturating_sub(run.duration),
                end,
                tc_util: run.activity.tc_utilization(run.cycles),
                cd_util: run.activity.cd_utilization(run.cycles),
                predicted,
                actual: run.duration,
            });
        };
        match decision {
            Decision::RunLc { predicted } => {
                let q = active.front_mut().expect("RunLc implies an active query");
                let si = q.service;
                let idx = q
                    .pending
                    .pop_front()
                    .expect("RunLc implies a pending kernel");
                let run = run_kernel(&services[si].lc.query_kernels()[idx])?;
                now += run.duration;
                q.remaining_pred = q.remaining_pred.saturating_sub(kernel_preds[si][idx]);
                if tracing {
                    retire(sink.as_ref(), &run, "LC", now, predicted);
                }
                if let Some(tl) = report.timeline.as_mut() {
                    tl.advance_to(now.saturating_sub(run.duration));
                    tl.record(&run, "LC");
                }
            }
            Decision::RunFused {
                be_index,
                launch,
                entry,
                x_tc,
                x_cd,
                lc_predicted,
                predicted,
                ..
            } => {
                let plan = ExecutablePlan::from_launch(device.spec(), &launch)?;
                let run = device.run_plan(&plan)?;
                now += run.duration;
                if tracing {
                    retire(sink.as_ref(), &run, "FUSED", now, predicted);
                }
                // LC kernel completed via fusion.
                let q = active.front_mut().expect("fusion implies an active query");
                let si = q.service;
                let idx = q
                    .pending
                    .pop_front()
                    .expect("fusion implies a pending kernel");
                q.remaining_pred = q.remaining_pred.saturating_sub(kernel_preds[si][idx]);
                // BE kernel completed via fusion: credit its solo work.
                let be_wk = be_heads[be_index]
                    .as_ref()
                    .expect("fusion used this BE head");
                report.be_work += profiler.measure(be_wk)?;
                report.be_kernels += 1;
                be_states[be_index].pop();
                report.fused_launches += 1;
                budget -= run.duration.saturating_sub(lc_predicted).as_nanos() as i128;
                // Online model refresh (>10% error, §VI-C) and pair
                // blacklisting when fusion lost to sequential (§VIII-I).
                if entry
                    .lock()
                    .expect("entry poisoned")
                    .observe_outcome(x_tc, x_cd, run.duration)
                {
                    report.model_refreshes += 1;
                    if tracing {
                        let actual = run.duration.as_nanos() as f64;
                        let rel_error = if actual > 0.0 {
                            (predicted.as_nanos() as f64 - actual).abs() / actual
                        } else {
                            0.0
                        };
                        sink.record(TraceEvent::ModelRefresh {
                            kernel: run.name.clone(),
                            rel_error,
                        });
                    }
                }
                if let Some(tl) = report.timeline.as_mut() {
                    tl.advance_to(now.saturating_sub(run.duration));
                    tl.record(&run, "FUSED");
                }
            }
            Decision::RunBe {
                be_index,
                predicted,
            } => {
                let be_wk = be_heads[be_index].as_ref().expect("BE head exists");
                let run = run_kernel(be_wk)?;
                now += run.duration;
                if tracing {
                    retire(sink.as_ref(), &run, "BE", now, predicted);
                }
                report.be_work += run.duration;
                report.be_kernels += 1;
                be_states[be_index].pop();
                if was_idle {
                    // Free-running BE during idle replenishes the budget.
                    budget = budget_cap.min(budget + run.duration.as_nanos() as i128);
                } else {
                    report.reordered_launches += 1;
                    budget -= run.duration.as_nanos() as i128;
                }
                if let Some(tl) = report.timeline.as_mut() {
                    tl.advance_to(now.saturating_sub(run.duration));
                    tl.record(&run, "BE");
                }
            }
            Decision::Idle => {
                // Jump to the next arrival of any service; genuine idle
                // replenishes the injection budget.
                let upcoming = arrivals_per_service
                    .iter()
                    .zip(&next_arrival)
                    .filter_map(|(a, &i)| a.get(i))
                    .min()
                    .copied();
                match upcoming {
                    Some(t) => {
                        let target = now.max(t);
                        budget =
                            budget_cap.min(budget + target.saturating_sub(now).as_nanos() as i128);
                        now = target;
                    }
                    None => break,
                }
            }
        }

        // Retire completed queries.
        while let Some(q) = active.front() {
            if q.pending.is_empty() {
                let latency = now.saturating_sub(q.arrival);
                let violated = latency > config.qos_target;
                let svc = &mut report.services[q.service];
                if violated {
                    svc.qos_violations += 1;
                    m_violations.inc();
                }
                svc.query_latencies.push(latency);
                svc.latency_histogram.observe(latency.as_micros_f64());
                m_latency_all.observe(latency.as_micros_f64());
                if tracing {
                    sink.record(TraceEvent::QueryCompleted {
                        service: svc.name.as_str().into(),
                        arrival: q.arrival,
                        latency,
                        violated,
                    });
                }
                active.pop_front();
                completed += 1;
            } else {
                break;
            }
        }
    }

    report.wall = now;
    sink.flush();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::GpuSpec;
    use tacker_workloads::parboil::Benchmark;
    use tacker_workloads::{BeApp, Intensity};

    /// A small synthetic LC service so tests stay fast: a few GEMM + CD
    /// kernels.
    fn tiny_lc() -> LcService {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let mut kernels = Vec::new();
        for _ in 0..3 {
            kernels.push(tacker_workloads::gemm::gemm_workload(
                &gemm,
                tacker_workloads::gemm::GemmShape::new(2048, 1024, 512),
            ));
            kernels.push(tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                4_000_000,
            ));
        }
        LcService::new("tiny", 8, kernels)
    }

    fn tiny_be() -> BeApp {
        BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task())
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::default().with_queries(30).with_seed(42)
    }

    #[test]
    fn lc_only_meets_qos_and_does_no_be_work() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let r =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::LcOnly, &config()).unwrap();
        assert_eq!(r.query_latencies.len(), 30);
        assert!(r.qos_met(), "violations {}", r.qos_violations);
        assert_eq!(r.be_kernels, 0);
        assert_eq!(r.fused_launches, 0);
    }

    #[test]
    fn baymax_reorders_and_meets_qos() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let r =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::Baymax, &config()).unwrap();
        assert!(r.qos_met(), "violations {}", r.qos_violations);
        assert!(r.be_kernels > 0);
        assert_eq!(r.fused_launches, 0);
        assert!(r.reordered_launches > 0);
    }

    #[test]
    fn tacker_fuses_and_beats_baymax_throughput() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let baymax =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::Baymax, &config()).unwrap();
        let tacker =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::Tacker, &config()).unwrap();
        assert!(tacker.qos_met(), "violations {}", tacker.qos_violations);
        assert!(tacker.fused_launches > 0, "no fusions happened");
        assert!(
            tacker.be_work_rate() > baymax.be_work_rate(),
            "tacker {} vs baymax {}",
            tacker.be_work_rate(),
            baymax.be_work_rate()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let a =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::Tacker, &config()).unwrap();
        let b =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::Tacker, &config()).unwrap();
        assert_eq!(a.query_latencies, b.query_latencies);
        assert_eq!(a.be_kernels, b.be_kernels);
    }

    #[test]
    fn timeline_recording_shows_overlap_only_for_tacker() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let cfg = config().with_timeline();
        let baymax =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::Baymax, &cfg).unwrap();
        let tacker =
            run_colocation(&device, &tiny_lc(), &[tiny_be()], Policy::Tacker, &cfg).unwrap();
        let b_tl = baymax.timeline.unwrap();
        let t_tl = tacker.timeline.unwrap();
        assert_eq!(b_tl.both_active_time(), SimTime::ZERO);
        assert!(t_tl.both_active_time() > SimTime::ZERO);
    }

    #[test]
    fn multi_service_runs_and_meets_qos() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let second = LcService::new(
            "tiny2",
            4,
            vec![
                tacker_workloads::gemm::gemm_workload(
                    &gemm,
                    tacker_workloads::gemm::GemmShape::new(1024, 1024, 512),
                ),
                tacker_workloads::dnn::elementwise::elementwise_workload(
                    &tacker_workloads::dnn::elementwise::batch_norm(),
                    2_000_000,
                ),
            ],
        );
        let cfg = config().with_queries(20);
        let r = crate::server::run_multi_colocation(
            &device,
            &[tiny_lc(), second],
            &[tiny_be()],
            Policy::Tacker,
            &cfg,
        )
        .unwrap();
        assert_eq!(r.services.len(), 2);
        for svc in &r.services {
            assert_eq!(svc.query_latencies.len(), 20, "{}", svc.name);
            assert_eq!(svc.qos_violations, 0, "{}", svc.name);
        }
        assert!(r.be_work_rate() >= 0.0);
        assert!(r.qos_met());
    }

    #[test]
    fn multi_report_into_single_roundtrip() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let cfg = config().with_queries(10);
        let multi = crate::server::run_multi_colocation(
            &device,
            &[tiny_lc()],
            &[tiny_be()],
            Policy::Baymax,
            &cfg,
        )
        .unwrap();
        let latencies = multi.services[0].query_latencies.clone();
        let single = multi.into_single();
        assert_eq!(single.query_latencies, latencies);
    }

    #[test]
    fn empty_service_is_a_config_error() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let empty = LcService::new("empty", 1, vec![]);
        assert!(matches!(
            run_colocation(&device, &empty, &[], Policy::Tacker, &config()),
            Err(TackerError::Config { .. })
        ));
    }
}
