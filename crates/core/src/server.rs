//! Peak-load calibration (§VIII-B).
//!
//! The co-location engine itself lives in [`crate::serve`]; this module
//! is calibration support ([`calibrate_peak_interarrival`],
//! [`solo_query_duration`]). The `run_colocation*` free functions that
//! once lived here are gone — [`ColocationRun`] is the single entry
//! point (see README «Migrating» for the call-for-call table).

use std::sync::Arc;

use tacker_kernel::SimTime;
use tacker_sim::Device;
use tacker_workloads::LcService;

use crate::config::ExperimentConfig;
use crate::error::TackerError;
use crate::manager::Policy;
use crate::profile::KernelProfiler;
use crate::serve::ColocationRun;

pub use crate::report::ServiceReport;
pub use crate::serve::ServiceLoad;

/// The solo (un-co-located) duration of one LC query: the sum of its
/// kernels' measured durations.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn solo_query_duration(
    profiler: &KernelProfiler,
    lc: &LcService,
) -> Result<SimTime, TackerError> {
    let mut total = SimTime::ZERO;
    for k in lc.query_kernels() {
        total += profiler.measure(k)?;
    }
    Ok(total)
}

/// Finds the service's *peak supported load* (§VIII-B): the highest
/// Poisson arrival rate whose 99%-ile latency still meets the QoS target
/// when the service runs alone. Returns the corresponding mean
/// inter-arrival time. Results are cached per (service, config, device).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn calibrate_peak_interarrival(
    device: &Arc<Device>,
    lc: &LcService,
    config: &ExperimentConfig,
) -> Result<SimTime, TackerError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    /// (service, device, qos ns, queries, seed) → peak inter-arrival.
    type CalibrationKey = (String, String, u64, usize, u64);
    static CACHE: OnceLock<Mutex<HashMap<CalibrationKey, SimTime>>> = OnceLock::new();
    // Calibration replays the experiment's own arrival sample (same seed
    // and query count) with BE disabled, so the chosen load provably meets
    // QoS for the arrivals the experiment will see — the paper's "without
    // causing QoS violation" condition.
    let config = &ExperimentConfig {
        record_timeline: false,
        ..config.clone()
    };
    let key = (
        lc.name().to_string(),
        device.spec().name.clone(),
        config.qos_target.as_nanos(),
        config.queries,
        config.seed,
    );
    if let Some(hit) = CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("calibration cache poisoned")
        .get(&key)
    {
        return Ok(*hit);
    }
    let profiler = KernelProfiler::new(Arc::clone(device));
    let solo = solo_query_duration(&profiler, lc)?;
    let meets = |mult: f64| -> Result<bool, TackerError> {
        let r = ColocationRun::new(device, config, std::slice::from_ref(lc), &[])?
            .policy(Policy::LcOnly)
            .at(solo.mul_f64(mult))
            .run()?;
        Ok(r.p99_latency().is_none_or(|p| p <= config.qos_target))
    };
    // Bisect the inter-arrival multiplier: larger = lighter load.
    let (mut lo, mut hi) = (1.0_f64, 16.0_f64);
    if !meets(hi)? {
        // Degenerate service: even a light load misses QoS.
        let v = solo.mul_f64(hi);
        CACHE
            .get_or_init(Default::default)
            .lock()
            .expect("calibration cache poisoned")
            .insert(key, v);
        return Ok(v);
    }
    if meets(lo)? {
        hi = lo;
    } else {
        for _ in 0..10 {
            let mid = 0.5 * (lo + hi);
            if meets(mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }
    let v = solo.mul_f64(hi);
    CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("calibration cache poisoned")
        .insert(key, v);
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunReport;
    use tacker_sim::GpuSpec;
    use tacker_workloads::parboil::Benchmark;
    use tacker_workloads::{BeApp, Intensity};

    /// A small synthetic LC service so tests stay fast: a few GEMM + CD
    /// kernels.
    fn tiny_lc() -> LcService {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let mut kernels = Vec::new();
        for _ in 0..3 {
            kernels.push(tacker_workloads::gemm::gemm_workload(
                &gemm,
                tacker_workloads::gemm::GemmShape::new(2048, 1024, 512),
            ));
            kernels.push(tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                4_000_000,
            ));
        }
        LcService::new("tiny", 8, kernels)
    }

    fn tiny_be() -> BeApp {
        BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task())
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::default().with_queries(30).with_seed(42)
    }

    fn run(device: &Arc<Device>, policy: Policy, cfg: &ExperimentConfig) -> RunReport {
        ColocationRun::new(device, cfg, &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .policy(policy)
            .run()
            .unwrap()
    }

    #[test]
    fn lc_only_meets_qos_and_does_no_be_work() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let r = run(&device, Policy::LcOnly, &config());
        assert_eq!(r.query_count(), 30);
        assert!(r.qos_met(), "violations {}", r.qos_violations());
        assert_eq!(r.be_kernels, 0);
        assert_eq!(r.fused_launches, 0);
    }

    #[test]
    fn baymax_reorders_and_meets_qos() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let r = run(&device, Policy::Baymax, &config());
        assert!(r.qos_met(), "violations {}", r.qos_violations());
        assert!(r.be_kernels > 0);
        assert_eq!(r.fused_launches, 0);
        assert!(r.reordered_launches > 0);
    }

    #[test]
    fn tacker_fuses_and_beats_baymax_throughput() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let baymax = run(&device, Policy::Baymax, &config());
        let tacker = run(&device, Policy::Tacker, &config());
        assert!(tacker.qos_met(), "violations {}", tacker.qos_violations());
        assert!(tacker.fused_launches > 0, "no fusions happened");
        assert!(
            tacker.be_work_rate() > baymax.be_work_rate(),
            "tacker {} vs baymax {}",
            tacker.be_work_rate(),
            baymax.be_work_rate()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let a = run(&device, Policy::Tacker, &config());
        let b = run(&device, Policy::Tacker, &config());
        assert_eq!(a.query_latencies(), b.query_latencies());
        assert_eq!(a.be_kernels, b.be_kernels);
    }

    #[test]
    fn timeline_recording_shows_overlap_only_for_tacker() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let cfg = config().with_timeline();
        let baymax = run(&device, Policy::Baymax, &cfg);
        let tacker = run(&device, Policy::Tacker, &cfg);
        let b_tl = baymax.timeline.unwrap();
        let t_tl = tacker.timeline.unwrap();
        assert_eq!(b_tl.both_active_time(), SimTime::ZERO);
        assert!(t_tl.both_active_time() > SimTime::ZERO);
    }

    #[test]
    fn multi_service_runs_and_meets_qos() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let second = LcService::new(
            "tiny2",
            4,
            vec![
                tacker_workloads::gemm::gemm_workload(
                    &gemm,
                    tacker_workloads::gemm::GemmShape::new(1024, 1024, 512),
                ),
                tacker_workloads::dnn::elementwise::elementwise_workload(
                    &tacker_workloads::dnn::elementwise::batch_norm(),
                    2_000_000,
                ),
            ],
        );
        let cfg = config().with_queries(20);
        let r = ColocationRun::new(&device, &cfg, &[tiny_lc(), second], &[tiny_be()])
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.per_service().len(), 2);
        for svc in r.per_service() {
            assert_eq!(svc.query_count(), 20, "{}", svc.name);
            assert_eq!(svc.qos_violations, 0, "{}", svc.name);
        }
        assert!(r.be_work_rate() >= 0.0);
        assert!(r.qos_met());
    }

    #[test]
    fn empty_service_is_a_config_error() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let empty = LcService::new("empty", 1, vec![]);
        assert!(matches!(
            ColocationRun::new(&device, &config(), &[empty], &[]).map(|_| ()),
            Err(TackerError::Config { .. })
        ));
    }
}
