//! Cluster-level deployment (§IV).
//!
//! "Kernel fusion can also be done on the clouds based on an application's
//! occurrence if the code is available. If an application's occurrence
//! exceeds a threshold, Tacker prepares fused kernels for its kernels. …
//! At the cluster level, we can identify the long-running applications and
//! prepare the fused kernels. The fused kernels are then distributed to
//! GPUs based on the BE applications' location."
//!
//! [`ClusterManager`] tracks how often each application is seen, prepares
//! fused kernels once an application crosses the (adjustable) occurrence
//! threshold, and distributes the prepared pairs to exactly the GPU nodes
//! hosting the relevant BE applications.
//!
//! This module is the *offline* half of the cluster story (what gets
//! fused, and where the artifacts land). The *online* half — routing live
//! LC traffic across the fleet and executing it concurrently — lives in
//! [`crate::fleet`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use tacker_sim::Device;
use tacker_workloads::{BeApp, LcService};

use crate::error::TackerError;
use crate::library::FusionLibrary;
use crate::profile::KernelProfiler;

/// One GPU in the cluster: a device, its fusion library, and the BE
/// applications resident on it.
pub struct GpuNode {
    /// Node identifier.
    pub id: String,
    device: Arc<Device>,
    profiler: Arc<KernelProfiler>,
    library: Arc<FusionLibrary>,
    resident_be: Vec<BeApp>,
}

impl GpuNode {
    /// Creates a node around a device.
    pub fn new(id: impl Into<String>, device: Arc<Device>) -> GpuNode {
        let profiler = Arc::new(KernelProfiler::new(Arc::clone(&device)));
        let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)));
        GpuNode {
            id: id.into(),
            device,
            profiler,
            library,
            resident_be: Vec::new(),
        }
    }

    /// The node's device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The node's fusion library.
    pub fn library(&self) -> &Arc<FusionLibrary> {
        &self.library
    }

    /// The node's kernel profiler.
    pub fn profiler(&self) -> &Arc<KernelProfiler> {
        &self.profiler
    }

    /// Places a BE application on this node.
    pub fn host_be(&mut self, app: BeApp) {
        self.resident_be.push(app);
    }

    /// BE applications resident on this node.
    pub fn resident_be(&self) -> &[BeApp] {
        &self.resident_be
    }
}

impl std::fmt::Debug for GpuNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuNode")
            .field("id", &self.id)
            .field("device", &self.device.spec().name)
            .field("resident_be", &self.resident_be.len())
            .finish()
    }
}

/// Summary of one distribution round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DistributionReport {
    /// (node id, pairs prepared) per node that hosts relevant BE apps.
    pub prepared_per_node: Vec<(String, usize)>,
    /// Pairs that fused across all nodes.
    pub fused_pairs: usize,
    /// Pairs declined (sequential faster / not fusable).
    pub declined_pairs: usize,
}

/// The cluster-level fusion coordinator.
pub struct ClusterManager {
    threshold: u32,
    occurrences: HashMap<String, u32>,
    prepared_services: HashSet<String>,
    nodes: Vec<GpuNode>,
}

impl ClusterManager {
    /// Creates a manager with the given occurrence threshold ("the
    /// threshold is adjustable", §IV).
    pub fn new(threshold: u32) -> ClusterManager {
        ClusterManager {
            threshold: threshold.max(1),
            occurrences: HashMap::new(),
            prepared_services: HashSet::new(),
            nodes: Vec::new(),
        }
    }

    /// Adds a GPU node.
    pub fn add_node(&mut self, node: GpuNode) {
        self.nodes.push(node);
    }

    /// The cluster's nodes.
    pub fn nodes(&self) -> &[GpuNode] {
        &self.nodes
    }

    /// Looks up a node by id.
    pub fn node(&self, id: &str) -> Option<&GpuNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Places a BE application on a node.
    ///
    /// # Errors
    ///
    /// Returns [`TackerError::Config`] for unknown node ids.
    pub fn place_be(&mut self, node_id: &str, app: BeApp) -> Result<(), TackerError> {
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == node_id)
            .ok_or_else(|| TackerError::Config {
                reason: format!("unknown node `{node_id}`"),
            })?;
        node.host_be(app);
        Ok(())
    }

    /// Records one occurrence of an LC service (one deployment/launch seen
    /// by the cluster scheduler). Returns `true` when this occurrence
    /// crosses the threshold, making the service eligible for offline
    /// fusion preparation.
    pub fn observe(&mut self, lc: &LcService) -> bool {
        let count = self.occurrences.entry(lc.name().to_string()).or_insert(0);
        *count += 1;
        *count == self.threshold
    }

    /// How many times a service has been observed.
    pub fn occurrences(&self, name: &str) -> u32 {
        self.occurrences.get(name).copied().unwrap_or(0)
    }

    /// Whether a service has had its fused kernels prepared.
    pub fn is_prepared(&self, name: &str) -> bool {
        self.prepared_services.contains(name)
    }

    /// Prepares and distributes fused kernels for a service that crossed
    /// the occurrence threshold: on every node, each of the service's
    /// fusable kernels is paired with the head kernels of the BE
    /// applications *resident on that node*.
    ///
    /// Idempotent per service. Services below the threshold are skipped.
    ///
    /// # Errors
    ///
    /// Propagates profiling/fusion errors from preparation.
    pub fn distribute(&mut self, lc: &LcService) -> Result<DistributionReport, TackerError> {
        let mut report = DistributionReport::default();
        if self.occurrences(lc.name()) < self.threshold || self.is_prepared(lc.name()) {
            return Ok(report);
        }
        for node in &self.nodes {
            if node.resident_be.is_empty() {
                continue;
            }
            let before = node.library.fused_pairs();
            let mut prepared_here = 0usize;
            for be in &node.resident_be {
                for be_kernel in be.task_kernels() {
                    for lc_kernel in lc.query_kernels() {
                        let Some((tc, cd)) = FusionLibrary::orient(lc_kernel, be_kernel) else {
                            continue;
                        };
                        if tc.def.is_opaque() || cd.def.is_opaque() {
                            continue;
                        }
                        node.library.prepare(tc, cd)?;
                        prepared_here += 1;
                    }
                }
            }
            let fused_here = node.library.fused_pairs() - before;
            report.fused_pairs += fused_here;
            report.declined_pairs += node.library.prepared_pairs() - node.library.fused_pairs();
            report
                .prepared_per_node
                .push((node.id.clone(), prepared_here));
        }
        self.prepared_services.insert(lc.name().to_string());
        Ok(report)
    }
}

impl std::fmt::Debug for ClusterManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterManager")
            .field("threshold", &self.threshold)
            .field("nodes", &self.nodes.len())
            .field("tracked_services", &self.occurrences.len())
            .field("prepared_services", &self.prepared_services.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::GpuSpec;
    use tacker_workloads::gemm::{gemm_workload, GemmShape};
    use tacker_workloads::parboil::Benchmark;
    use tacker_workloads::Intensity;

    fn small_lc() -> LcService {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        LcService::new(
            "svc",
            8,
            vec![gemm_workload(&gemm, GemmShape::new(2048, 1024, 512))],
        )
    }

    fn cluster() -> ClusterManager {
        let mut c = ClusterManager::new(3);
        c.add_node(GpuNode::new(
            "gpu-0",
            Arc::new(Device::new(GpuSpec::rtx2080ti())),
        ));
        c.add_node(GpuNode::new(
            "gpu-1",
            Arc::new(Device::new(GpuSpec::v100())),
        ));
        c
    }

    #[test]
    fn threshold_gates_preparation() {
        let mut c = cluster();
        c.place_be(
            "gpu-0",
            BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task()),
        )
        .unwrap();
        let lc = small_lc();
        assert!(!c.observe(&lc));
        // Below threshold: distribute is a no-op.
        let r = c.distribute(&lc).unwrap();
        assert_eq!(r.fused_pairs, 0);
        assert!(!c.is_prepared("svc"));
        assert!(!c.observe(&lc));
        assert!(c.observe(&lc)); // third occurrence crosses threshold 3
        let r = c.distribute(&lc).unwrap();
        assert!(r.fused_pairs > 0);
        assert!(c.is_prepared("svc"));
    }

    #[test]
    fn distribution_targets_nodes_hosting_be_apps() {
        let mut c = cluster();
        // Only gpu-1 hosts a BE app.
        c.place_be(
            "gpu-1",
            BeApp::new("mriq", Intensity::Compute, Benchmark::Mriq.task()),
        )
        .unwrap();
        let lc = small_lc();
        for _ in 0..3 {
            c.observe(&lc);
        }
        let r = c.distribute(&lc).unwrap();
        assert_eq!(r.prepared_per_node.len(), 1);
        assert_eq!(r.prepared_per_node[0].0, "gpu-1");
        assert!(c.node("gpu-1").unwrap().library().fused_pairs() > 0);
        assert_eq!(c.node("gpu-0").unwrap().library().fused_pairs(), 0);
    }

    #[test]
    fn distribution_is_idempotent() {
        let mut c = cluster();
        c.place_be(
            "gpu-0",
            BeApp::new("fft", Intensity::Compute, Benchmark::Fft.task()),
        )
        .unwrap();
        let lc = small_lc();
        for _ in 0..3 {
            c.observe(&lc);
        }
        let first = c.distribute(&lc).unwrap();
        assert!(first.fused_pairs > 0);
        let second = c.distribute(&lc).unwrap();
        assert_eq!(second.fused_pairs, 0, "already prepared");
    }

    #[test]
    fn observe_fires_exactly_at_the_threshold() {
        let mut c = ClusterManager::new(3);
        let lc = small_lc();
        // `observe` returns true only on the occurrence that *crosses* the
        // threshold — not before, and not on later occurrences (those are
        // already eligible, not newly eligible).
        assert!(!c.observe(&lc));
        assert!(!c.observe(&lc));
        assert!(c.observe(&lc), "third occurrence crosses threshold 3");
        assert_eq!(c.occurrences("svc"), 3);
        assert!(!c.observe(&lc), "past the threshold is not a new crossing");
        assert_eq!(c.occurrences("svc"), 4);
        // A zero threshold clamps to 1: the very first occurrence fires.
        let mut zero = ClusterManager::new(0);
        assert!(zero.observe(&lc));
        assert!(!zero.observe(&lc));
    }

    #[test]
    fn distribution_with_no_be_hosts_prepares_nothing_but_marks_done() {
        // No node hosts any BE app: the service's pair set is empty
        // everywhere. Distribution touches no library, reports no target
        // nodes — and still marks the service prepared, so the cluster
        // does not retry the same no-op on every later deployment.
        let mut c = cluster();
        let lc = small_lc();
        for _ in 0..3 {
            c.observe(&lc);
        }
        let r = c.distribute(&lc).unwrap();
        assert!(r.prepared_per_node.is_empty());
        assert_eq!(r.fused_pairs, 0);
        assert_eq!(r.declined_pairs, 0);
        assert!(c.is_prepared("svc"));
        for node in c.nodes() {
            assert_eq!(node.library().prepared_pairs(), 0);
        }
        // BE placed *after* preparation: redistribution still short-circuits
        // (the service is already marked), leaving the new node untouched.
        c.place_be(
            "gpu-0",
            BeApp::new("fft", Intensity::Compute, Benchmark::Fft.task()),
        )
        .unwrap();
        let again = c.distribute(&lc).unwrap();
        assert!(again.prepared_per_node.is_empty());
        assert_eq!(c.node("gpu-0").unwrap().library().prepared_pairs(), 0);
    }

    #[test]
    fn redistribution_short_circuits_without_touching_libraries() {
        let mut c = cluster();
        c.place_be(
            "gpu-0",
            BeApp::new("fft", Intensity::Compute, Benchmark::Fft.task()),
        )
        .unwrap();
        let lc = small_lc();
        for _ in 0..3 {
            c.observe(&lc);
        }
        let first = c.distribute(&lc).unwrap();
        assert!(!first.prepared_per_node.is_empty());
        let pairs_after_first: Vec<usize> = c
            .nodes()
            .iter()
            .map(|n| n.library().prepared_pairs())
            .collect();
        // The `is_prepared` short-circuit returns an empty report and
        // leaves every node's library pair count exactly as it was.
        let second = c.distribute(&lc).unwrap();
        assert_eq!(second, DistributionReport::default());
        let pairs_after_second: Vec<usize> = c
            .nodes()
            .iter()
            .map(|n| n.library().prepared_pairs())
            .collect();
        assert_eq!(pairs_after_first, pairs_after_second);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let mut c = cluster();
        let err = c
            .place_be(
                "gpu-9",
                BeApp::new("fft", Intensity::Compute, Benchmark::Fft.task()),
            )
            .unwrap_err();
        assert!(err.to_string().contains("gpu-9"));
    }
}
