//! Parallel (LC service × BE app) sweep execution.
//!
//! The paper's evaluation is one big grid: 6 LC services × 12 BE apps,
//! each cell several full co-location runs (Figures 10–18). The cells are
//! independent deterministic simulations, so they fan out over the
//! `tacker-par` persistent pool and share one [`Device`] — profiling and
//! fusion preparation done for one cell is memoized and reused by every
//! other cell that touches the same kernels.
//!
//! Scheduling: cells are **sharded by expected event count** (queries ×
//! summed kernel micro-op footprint, see [`expected_cell_events`]) and
//! claimed heaviest-first, so one Resnet-sized cell cannot serialize the
//! tail of an otherwise-drained sweep. Sharding steers scheduling only.
//!
//! Determinism: every run's RNG seed is derived from its
//! `(LC, BE, policy)` coordinates via [`tacker_par::derive_seed`], never
//! shared between runs, and the pool joins results back in grid order. A
//! sweep at `jobs = 32` is therefore bit-identical to the same sweep at
//! `jobs = 1`.

use std::sync::Arc;

use tacker_sim::Device;
use tacker_workloads::{BeApp, LcService, WorkloadKernel};

use crate::config::ExperimentConfig;
use crate::error::TackerError;
use crate::manager::Policy;
use crate::report::RunReport;
use crate::serve::ColocationRun;

/// One (LC, BE, policy) cell of a sweep, with its completed run.
#[derive(Debug)]
pub struct SweepCell {
    /// LC service name.
    pub lc: String,
    /// BE application name.
    pub be: String,
    /// Policy the cell ran under.
    pub policy: Policy,
    /// The scheduling weight this cell was sharded with (see
    /// [`expected_cell_events`]); recorded so benchmark provenance can
    /// audit shard balance.
    pub expected_events: u64,
    /// The run's report.
    pub report: RunReport,
}

/// The seed a sweep cell runs with: the experiment's base seed mixed with
/// the cell coordinates, so each run owns an independent RNG stream
/// regardless of which worker executes it (or in what order).
pub fn cell_seed(config: &ExperimentConfig, lc: &str, be: &str, policy: Policy) -> u64 {
    tacker_par::derive_seed(config.seed, &[lc, be, &format!("{policy:?}")])
}

fn kernel_micro_footprint(kernels: &[WorkloadKernel]) -> u64 {
    // Micro-ops per launch × blocks, with blocks capped at the number an
    // SM-level simulation actually steps through distinctly — beyond the
    // residency limit extra blocks repeat the same per-block cost.
    kernels
        .iter()
        .map(|k| (k.def.body().len().max(1) as u64).saturating_mul(k.grid.min(272)))
        .sum()
}

/// Expected-event proxy for one sweep cell: queries × the summed micro-op
/// footprint of the LC query and BE task kernels. Not a simulation-exact
/// count — it only has to *rank* cells so the heaviest start first, and
/// to estimate whether a whole sweep is worth fanning out at all (the
/// pool's serial work threshold).
pub fn expected_cell_events(lc: &LcService, be: &BeApp, queries: u64) -> u64 {
    let per_query = kernel_micro_footprint(lc.query_kernels());
    let be_task = kernel_micro_footprint(be.task_kernels());
    queries.saturating_mul(per_query + be_task).max(1)
}

/// The worker count [`run_pair_sweep`] will actually use for a grid —
/// `requested` resolved against the host, the cell count, and the
/// serial-work threshold. Exposed so benchmark provenance can record the
/// decision without re-deriving it.
pub fn sweep_jobs_used(
    requested: usize,
    lcs: &[LcService],
    bes: &[BeApp],
    policies: &[Policy],
    config: &ExperimentConfig,
) -> usize {
    let mut cells = 0usize;
    let mut total = 0u64;
    for lc in lcs {
        for be in bes {
            let w = expected_cell_events(lc, be, config.queries as u64);
            cells += policies.len();
            total = total.saturating_add(w.saturating_mul(policies.len() as u64));
        }
    }
    tacker_par::planned_jobs(requested, cells, total)
}

/// Runs the full `lcs × bes × policies` grid on `jobs` workers (`0` = every
/// core) from the persistent pool, sharing `device` across all cells.
/// Results come back in grid order: LC-major, then BE, then policy.
///
/// # Errors
///
/// Propagates the first failing cell's error, by grid order.
pub fn run_pair_sweep(
    device: &Arc<Device>,
    lcs: &[LcService],
    bes: &[BeApp],
    policies: &[Policy],
    config: &ExperimentConfig,
    jobs: usize,
) -> Result<Vec<SweepCell>, TackerError> {
    let mut cells: Vec<(LcService, BeApp, Policy, u64)> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for lc in lcs {
        for be in bes {
            let expected = expected_cell_events(lc, be, config.queries as u64);
            for &policy in policies {
                cells.push((lc.clone(), be.clone(), policy, expected));
                weights.push(expected);
            }
        }
    }
    let device = Arc::clone(device);
    let config = config.clone();
    tacker_par::try_pool_map_sharded(
        jobs,
        cells,
        &weights,
        move |_, (lc, be, policy, expected)| {
            let cfg = config
                .clone()
                .with_seed(cell_seed(&config, lc.name(), be.name(), *policy));
            let report = ColocationRun::new(
                &device,
                &cfg,
                std::slice::from_ref(lc),
                std::slice::from_ref(be),
            )?
            .policy(*policy)
            .run()?;
            Ok(SweepCell {
                lc: lc.name().to_string(),
                be: be.name().to_string(),
                policy: *policy,
                expected_events: *expected,
                report,
            })
        },
    )
}

/// Tacker-vs-Baymax throughput improvement for every (LC, BE) pair, in
/// percent — the Figure 14 computation, parallel over the grid. Returns
/// `(lc, be, improvement %, baymax report, tacker report)` in grid order.
///
/// # Errors
///
/// Propagates the first failing pair's error, by grid order.
#[allow(clippy::type_complexity)]
pub fn run_improvement_sweep(
    device: &Arc<Device>,
    lcs: &[LcService],
    bes: &[BeApp],
    config: &ExperimentConfig,
    jobs: usize,
) -> Result<Vec<(String, String, f64, RunReport, RunReport)>, TackerError> {
    let mut pairs: Vec<(LcService, BeApp)> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for lc in lcs {
        for be in bes {
            // Each pair runs both policies; the factor is uniform so it
            // cannot change the heaviest-first ranking, but it keeps the
            // total honest for the serial-work threshold.
            weights.push(expected_cell_events(lc, be, config.queries as u64).saturating_mul(2));
            pairs.push((lc.clone(), be.clone()));
        }
    }
    let device = Arc::clone(device);
    let config = config.clone();
    tacker_par::try_pool_map_sharded(jobs, pairs, &weights, move |_, (lc, be)| {
        let be_slice = std::slice::from_ref(be);
        let lc_slice = std::slice::from_ref(lc);
        let baymax = ColocationRun::new(&device, &config, lc_slice, be_slice)?
            .policy(Policy::Baymax)
            .run()?;
        let tacker = ColocationRun::new(&device, &config, lc_slice, be_slice)?
            .policy(Policy::Tacker)
            .run()?;
        let imp = 100.0
            * crate::metrics::throughput_improvement(baymax.be_work_rate(), tacker.be_work_rate());
        Ok((
            lc.name().to_string(),
            be.name().to_string(),
            imp,
            baymax,
            tacker,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::GpuSpec;
    use tacker_workloads::parboil::Benchmark;
    use tacker_workloads::Intensity;

    fn tiny_lc(name: &str, m: u64) -> LcService {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        LcService::new(
            name,
            4,
            vec![
                tacker_workloads::gemm::gemm_workload(
                    &gemm,
                    tacker_workloads::gemm::GemmShape::new(m, 1024, 512),
                ),
                tacker_workloads::dnn::elementwise::elementwise_workload(
                    &tacker_workloads::dnn::elementwise::relu(),
                    3_000_000,
                ),
            ],
        )
    }

    #[test]
    fn cell_seeds_are_coordinate_derived() {
        let config = ExperimentConfig::default();
        let a = cell_seed(&config, "A", "x", Policy::Tacker);
        assert_eq!(a, cell_seed(&config, "A", "x", Policy::Tacker));
        assert_ne!(a, cell_seed(&config, "A", "x", Policy::Baymax));
        assert_ne!(a, cell_seed(&config, "A", "y", Policy::Tacker));
        assert_ne!(
            a,
            cell_seed(&config.clone().with_seed(1), "A", "x", Policy::Tacker)
        );
    }

    #[test]
    fn expected_events_scale_with_queries_and_kernels() {
        let lc = tiny_lc("a", 1024);
        let be = tacker_workloads::BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task());
        let ten = expected_cell_events(&lc, &be, 10);
        let twenty = expected_cell_events(&lc, &be, 20);
        assert_eq!(twenty, ten * 2, "proxy is linear in queries");
        assert!(ten > 0);
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let lcs = vec![tiny_lc("a", 1024), tiny_lc("b", 2048)];
        let bes = vec![tacker_workloads::BeApp::new(
            "cutcp",
            Intensity::Compute,
            Benchmark::Cutcp.task(),
        )];
        let config = ExperimentConfig::default().with_queries(10);
        let cells = run_pair_sweep(
            &device,
            &lcs,
            &bes,
            &[Policy::Baymax, Policy::Tacker],
            &config,
            2,
        )
        .unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.lc.as_str(), c.policy))
                .collect::<Vec<_>>(),
            vec![
                ("a", Policy::Baymax),
                ("a", Policy::Tacker),
                ("b", Policy::Baymax),
                ("b", Policy::Tacker),
            ]
        );
        for c in &cells {
            assert_eq!(c.report.query_count(), 10, "{}+{}", c.lc, c.be);
            assert!(c.expected_events > 0);
        }
    }
}
