//! Parallel (LC service × BE app) sweep execution.
//!
//! The paper's evaluation is one big grid: 6 LC services × 12 BE apps,
//! each cell several full co-location runs (Figures 10–18). The cells are
//! independent deterministic simulations, so they fan out over the
//! `tacker-par` work pool and share one [`Device`] — profiling and fusion
//! preparation done for one cell is memoized and reused by every other
//! cell that touches the same kernels.
//!
//! Determinism: every run's RNG seed is derived from its
//! `(LC, BE, policy)` coordinates via [`tacker_par::derive_seed`], never
//! shared between runs, and [`tacker_par::par_map`] joins results back in
//! grid order. A sweep at `jobs = 32` is therefore bit-identical to the
//! same sweep at `jobs = 1`.

use std::sync::Arc;

use tacker_sim::Device;
use tacker_workloads::{BeApp, LcService};

use crate::config::ExperimentConfig;
use crate::error::TackerError;
use crate::manager::Policy;
use crate::report::RunReport;
use crate::serve::ColocationRun;

/// One (LC, BE, policy) cell of a sweep, with its completed run.
#[derive(Debug)]
pub struct SweepCell {
    /// LC service name.
    pub lc: String,
    /// BE application name.
    pub be: String,
    /// Policy the cell ran under.
    pub policy: Policy,
    /// The run's report.
    pub report: RunReport,
}

/// The seed a sweep cell runs with: the experiment's base seed mixed with
/// the cell coordinates, so each run owns an independent RNG stream
/// regardless of which worker executes it (or in what order).
pub fn cell_seed(config: &ExperimentConfig, lc: &str, be: &str, policy: Policy) -> u64 {
    tacker_par::derive_seed(config.seed, &[lc, be, &format!("{policy:?}")])
}

/// Runs the full `lcs × bes × policies` grid on `jobs` workers (`0` = every
/// core), sharing `device` across all cells. Results come back in grid
/// order: LC-major, then BE, then policy.
///
/// # Errors
///
/// Propagates the first failing cell's error, by grid order.
pub fn run_pair_sweep(
    device: &Arc<Device>,
    lcs: &[LcService],
    bes: &[BeApp],
    policies: &[Policy],
    config: &ExperimentConfig,
    jobs: usize,
) -> Result<Vec<SweepCell>, TackerError> {
    let mut cells: Vec<(&LcService, &BeApp, Policy)> = Vec::new();
    for lc in lcs {
        for be in bes {
            for &policy in policies {
                cells.push((lc, be, policy));
            }
        }
    }
    tacker_par::try_par_map(jobs, &cells, |_, &(lc, be, policy)| {
        let cfg = config
            .clone()
            .with_seed(cell_seed(config, lc.name(), be.name(), policy));
        let report = ColocationRun::new(
            device,
            &cfg,
            std::slice::from_ref(lc),
            std::slice::from_ref(be),
        )?
        .policy(policy)
        .run()?;
        Ok(SweepCell {
            lc: lc.name().to_string(),
            be: be.name().to_string(),
            policy,
            report,
        })
    })
}

/// Tacker-vs-Baymax throughput improvement for every (LC, BE) pair, in
/// percent — the Figure 14 computation, parallel over the grid. Returns
/// `(lc, be, improvement %, baymax report, tacker report)` in grid order.
///
/// # Errors
///
/// Propagates the first failing pair's error, by grid order.
#[allow(clippy::type_complexity)]
pub fn run_improvement_sweep(
    device: &Arc<Device>,
    lcs: &[LcService],
    bes: &[BeApp],
    config: &ExperimentConfig,
    jobs: usize,
) -> Result<Vec<(String, String, f64, RunReport, RunReport)>, TackerError> {
    let mut pairs: Vec<(&LcService, &BeApp)> = Vec::new();
    for lc in lcs {
        for be in bes {
            pairs.push((lc, be));
        }
    }
    tacker_par::try_par_map(jobs, &pairs, |_, &(lc, be)| {
        let be_slice = std::slice::from_ref(be);
        let lc_slice = std::slice::from_ref(lc);
        let baymax = ColocationRun::new(device, config, lc_slice, be_slice)?
            .policy(Policy::Baymax)
            .run()?;
        let tacker = ColocationRun::new(device, config, lc_slice, be_slice)?
            .policy(Policy::Tacker)
            .run()?;
        let imp = 100.0
            * crate::metrics::throughput_improvement(baymax.be_work_rate(), tacker.be_work_rate());
        Ok((
            lc.name().to_string(),
            be.name().to_string(),
            imp,
            baymax,
            tacker,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::GpuSpec;
    use tacker_workloads::parboil::Benchmark;
    use tacker_workloads::Intensity;

    fn tiny_lc(name: &str, m: u64) -> LcService {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        LcService::new(
            name,
            4,
            vec![
                tacker_workloads::gemm::gemm_workload(
                    &gemm,
                    tacker_workloads::gemm::GemmShape::new(m, 1024, 512),
                ),
                tacker_workloads::dnn::elementwise::elementwise_workload(
                    &tacker_workloads::dnn::elementwise::relu(),
                    3_000_000,
                ),
            ],
        )
    }

    #[test]
    fn cell_seeds_are_coordinate_derived() {
        let config = ExperimentConfig::default();
        let a = cell_seed(&config, "A", "x", Policy::Tacker);
        assert_eq!(a, cell_seed(&config, "A", "x", Policy::Tacker));
        assert_ne!(a, cell_seed(&config, "A", "x", Policy::Baymax));
        assert_ne!(a, cell_seed(&config, "A", "y", Policy::Tacker));
        assert_ne!(
            a,
            cell_seed(&config.clone().with_seed(1), "A", "x", Policy::Tacker)
        );
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let lcs = vec![tiny_lc("a", 1024), tiny_lc("b", 2048)];
        let bes = vec![tacker_workloads::BeApp::new(
            "cutcp",
            Intensity::Compute,
            Benchmark::Cutcp.task(),
        )];
        let config = ExperimentConfig::default().with_queries(10);
        let cells = run_pair_sweep(
            &device,
            &lcs,
            &bes,
            &[Policy::Baymax, Policy::Tacker],
            &config,
            2,
        )
        .unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.lc.as_str(), c.policy))
                .collect::<Vec<_>>(),
            vec![
                ("a", Policy::Baymax),
                ("a", Policy::Tacker),
                ("b", Policy::Baymax),
                ("b", Policy::Tacker),
            ]
        );
        for c in &cells {
            assert_eq!(c.report.query_count(), 10, "{}+{}", c.lc, c.be);
        }
    }
}
