//! The adaptive QoS guard: EWMA error tracking, margin inflation, and a
//! degradation ladder.
//!
//! The manager's headroom arithmetic (Equations 8–9) trusts the duration
//! predictor. When predictions go persistently wrong — a stale profile, a
//! straggling kernel, a predictor outage — that trust becomes a QoS
//! liability: the scheduler keeps injecting best-effort work into headroom
//! that does not actually exist. [`QosGuard`] watches two smoothed
//! signals and reacts *structurally* rather than per-launch:
//!
//! * a per-kernel EWMA of relative prediction error (via
//!   [`tacker_predictor::ErrorFeedback`]); the worst sufficiently-sampled
//!   stream inflates a **headroom margin** subtracted from both the fusion
//!   and reorder headroom, proportional to the observed error;
//! * an EWMA of the QoS-violation indicator (tail-latency pressure).
//!
//! When either signal crosses its threshold the guard steps down a
//! degradation ladder — [`GuardLevel::Fuse`] →
//! [`GuardLevel::ReorderOnly`] → [`GuardLevel::LcOnly`] — shedding the
//! riskiest co-location mechanism first. Sustained calm (both signals
//! under half their thresholds) steps back up, with hysteresis so the
//! guard does not oscillate.
//!
//! Both thresholds have a dead zone: below them the margin is exactly
//! [`SimTime::ZERO`] and the level stays [`GuardLevel::Fuse`], so a
//! guarded fault-free run makes decisions bit-identical to an unguarded
//! one.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use tacker_kernel::SimTime;
use tacker_predictor::{ErrorFeedback, Ewma};

/// Rungs of the degradation ladder, riskiest mechanism shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardLevel {
    /// Full co-location: fusion, reorder and free-running BE.
    Fuse = 0,
    /// Fusion disabled; BE kernels only via reorder or idle periods.
    ReorderOnly = 1,
    /// No best-effort work at all until conditions recover.
    LcOnly = 2,
}

impl GuardLevel {
    /// Stable lowercase name (used in trace events).
    pub fn name(self) -> &'static str {
        match self {
            GuardLevel::Fuse => "fuse",
            GuardLevel::ReorderOnly => "reorder_only",
            GuardLevel::LcOnly => "lc_only",
        }
    }

    /// Whether fused launches are allowed at this level.
    pub fn fusion_allowed(self) -> bool {
        self == GuardLevel::Fuse
    }

    /// Whether reordering BE kernels into headroom is allowed.
    pub fn reorder_allowed(self) -> bool {
        self <= GuardLevel::ReorderOnly
    }

    /// Whether BE kernels may run at all.
    pub fn best_effort_allowed(self) -> bool {
        self != GuardLevel::LcOnly
    }

    fn from_u8(v: u8) -> GuardLevel {
        match v {
            0 => GuardLevel::Fuse,
            1 => GuardLevel::ReorderOnly,
            _ => GuardLevel::LcOnly,
        }
    }

    fn down(self) -> Option<GuardLevel> {
        match self {
            GuardLevel::Fuse => Some(GuardLevel::ReorderOnly),
            GuardLevel::ReorderOnly => Some(GuardLevel::LcOnly),
            GuardLevel::LcOnly => None,
        }
    }

    fn up(self) -> Option<GuardLevel> {
        match self {
            GuardLevel::Fuse => None,
            GuardLevel::ReorderOnly => Some(GuardLevel::Fuse),
            GuardLevel::LcOnly => Some(GuardLevel::ReorderOnly),
        }
    }
}

/// Tuning knobs of the [`QosGuard`].
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Smoothing factor of the per-kernel prediction-error EWMAs.
    pub error_alpha: f64,
    /// Smoothing factor of the QoS-violation pressure EWMA.
    pub pressure_alpha: f64,
    /// Smoothed relative error above which the guard reacts (dead zone
    /// below: zero margin, no ladder steps).
    pub error_threshold: f64,
    /// Smoothed violation rate above which the guard reacts.
    pub pressure_threshold: f64,
    /// Minimum observations before a kernel's error stream can trip the
    /// guard (a single noisy launch must not).
    pub min_samples: u64,
    /// Observations between consecutive ladder steps down.
    pub cooldown: u32,
    /// Consecutive calm observations (both signals under half their
    /// thresholds) required to step back up.
    pub recovery: u32,
    /// Cap on the inflated margin as a fraction of the QoS target.
    pub max_margin_frac: f64,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            error_alpha: 0.25,
            pressure_alpha: 0.2,
            error_threshold: 0.2,
            pressure_threshold: 0.05,
            min_samples: 6,
            cooldown: 16,
            recovery: 48,
            max_margin_frac: 0.25,
        }
    }
}

/// One ladder step, reported so the server can trace it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardTransition {
    /// Level before the step.
    pub from: GuardLevel,
    /// Level after the step.
    pub to: GuardLevel,
    /// `"error"`, `"pressure"` or `"recovered"`.
    pub reason: &'static str,
    /// Worst smoothed prediction error at the step.
    pub ewma_error: f64,
    /// Smoothed violation pressure at the step.
    pub pressure: f64,
}

struct GuardState {
    pressure: Ewma,
    /// Observations since the last ladder step (starts at `cooldown` so
    /// the first trip reacts immediately).
    since_step: u32,
    /// Consecutive calm observations.
    calm: u32,
}

/// The adaptive QoS guard (see the module docs).
///
/// `level()` and `margin()` are lock-free atomic reads so the manager's
/// decision hot path never contends with the observation path.
pub struct QosGuard {
    config: GuardConfig,
    qos_target: SimTime,
    feedback: ErrorFeedback,
    level: AtomicU8,
    margin_ns: AtomicU64,
    state: Mutex<GuardState>,
}

impl std::fmt::Debug for QosGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QosGuard")
            .field("level", &self.level())
            .field("margin", &self.margin())
            .finish()
    }
}

impl QosGuard {
    /// Creates a guard for the given QoS target.
    pub fn new(qos_target: SimTime, config: GuardConfig) -> QosGuard {
        let feedback = ErrorFeedback::new(config.error_alpha);
        let state = GuardState {
            pressure: Ewma::new(config.pressure_alpha),
            since_step: config.cooldown,
            calm: 0,
        };
        QosGuard {
            config,
            qos_target,
            feedback,
            level: AtomicU8::new(GuardLevel::Fuse as u8),
            margin_ns: AtomicU64::new(0),
            state: Mutex::new(state),
        }
    }

    /// The current ladder level.
    pub fn level(&self) -> GuardLevel {
        GuardLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// The current headroom margin to subtract (zero in the dead zone).
    pub fn margin(&self) -> SimTime {
        SimTime::from_nanos(self.margin_ns.load(Ordering::Relaxed))
    }

    /// Worst sufficiently-sampled smoothed prediction error.
    pub fn ewma_error(&self) -> f64 {
        self.feedback.max_error(self.config.min_samples)
    }

    /// Folds one predicted-vs-actual launch outcome into the per-kernel
    /// error streams and re-evaluates the ladder.
    pub fn observe_launch(
        &self,
        kernel: u64,
        predicted: SimTime,
        actual: SimTime,
    ) -> Option<GuardTransition> {
        self.feedback
            .observe(kernel, predicted.as_nanos(), actual.as_nanos());
        let mut state = self.state.lock().expect("guard poisoned");
        self.evaluate(&mut state)
    }

    /// Folds one completed query into the violation-pressure EWMA and
    /// re-evaluates the ladder.
    pub fn observe_query(&self, latency: SimTime) -> Option<GuardTransition> {
        let violated = latency > self.qos_target;
        let mut state = self.state.lock().expect("guard poisoned");
        state.pressure.observe(if violated { 1.0 } else { 0.0 });
        self.evaluate(&mut state)
    }

    fn evaluate(&self, state: &mut GuardState) -> Option<GuardTransition> {
        state.since_step = state.since_step.saturating_add(1);
        let err = self.feedback.max_error(self.config.min_samples);
        let pressure = state.pressure.value();
        let over_err = err > self.config.error_threshold;
        let over_pressure = pressure > self.config.pressure_threshold;
        let margin = if over_err {
            self.qos_target
                .mul_f64(err.min(self.config.max_margin_frac))
        } else {
            SimTime::ZERO
        };
        self.margin_ns.store(margin.as_nanos(), Ordering::Relaxed);
        let level = self.level();
        if over_err || over_pressure {
            state.calm = 0;
            if state.since_step > self.config.cooldown {
                if let Some(next) = level.down() {
                    state.since_step = 0;
                    self.level.store(next as u8, Ordering::Relaxed);
                    return Some(GuardTransition {
                        from: level,
                        to: next,
                        reason: if over_err { "error" } else { "pressure" },
                        ewma_error: err,
                        pressure,
                    });
                }
            }
            return None;
        }
        let calm = err <= 0.5 * self.config.error_threshold
            && pressure <= 0.5 * self.config.pressure_threshold;
        if !calm {
            state.calm = 0;
            return None;
        }
        state.calm += 1;
        if state.calm >= self.config.recovery {
            state.calm = 0;
            if let Some(prev) = level.up() {
                state.since_step = 0;
                self.level.store(prev as u8, Ordering::Relaxed);
                return Some(GuardTransition {
                    from: level,
                    to: prev,
                    reason: "recovered",
                    ewma_error: err,
                    pressure,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> QosGuard {
        QosGuard::new(SimTime::from_millis(50), GuardConfig::default())
    }

    #[test]
    fn ladder_capabilities() {
        assert!(GuardLevel::Fuse.fusion_allowed());
        assert!(GuardLevel::Fuse.reorder_allowed());
        assert!(!GuardLevel::ReorderOnly.fusion_allowed());
        assert!(GuardLevel::ReorderOnly.reorder_allowed());
        assert!(!GuardLevel::LcOnly.best_effort_allowed());
        assert_eq!(GuardLevel::LcOnly.down(), None);
        assert_eq!(GuardLevel::Fuse.up(), None);
    }

    #[test]
    fn accurate_predictions_keep_the_dead_zone() {
        let g = guard();
        let t = SimTime::from_micros(100);
        for k in 0..4u64 {
            for _ in 0..20 {
                assert_eq!(g.observe_launch(k, t, t), None);
            }
        }
        for _ in 0..20 {
            assert_eq!(g.observe_query(SimTime::from_millis(10)), None);
        }
        assert_eq!(g.level(), GuardLevel::Fuse);
        assert_eq!(g.margin(), SimTime::ZERO);
    }

    #[test]
    fn sustained_error_steps_down_and_inflates_margin() {
        let g = guard();
        let predicted = SimTime::from_micros(100);
        let actual = SimTime::from_micros(150); // rel error 1/3
        let mut steps = Vec::new();
        for _ in 0..200 {
            if let Some(t) = g.observe_launch(7, predicted, actual) {
                steps.push(t);
            }
        }
        assert_eq!(g.level(), GuardLevel::LcOnly);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].from, GuardLevel::Fuse);
        assert_eq!(steps[0].to, GuardLevel::ReorderOnly);
        assert_eq!(steps[0].reason, "error");
        assert_eq!(steps[1].to, GuardLevel::LcOnly);
        // Margin ≈ qos × error (1/3 > max_margin_frac 0.25 → capped).
        assert_eq!(g.margin(), SimTime::from_millis(50).mul_f64(0.25));
        // Stays at the bottom rung; no further transitions.
        assert_eq!(g.observe_launch(7, predicted, actual), None);
    }

    #[test]
    fn violation_pressure_alone_steps_down() {
        let g = guard();
        let mut stepped = false;
        for _ in 0..10 {
            if g.observe_query(SimTime::from_millis(80)).is_some() {
                stepped = true;
            }
        }
        assert!(stepped, "sustained violations must trip the guard");
        assert!(g.level() > GuardLevel::Fuse);
        // Pressure-only trips inflate no margin (errors are fine).
        assert_eq!(g.margin(), SimTime::ZERO);
    }

    #[test]
    fn calm_recovers_with_hysteresis() {
        let cfg = GuardConfig {
            recovery: 10,
            ..GuardConfig::default()
        };
        let g = QosGuard::new(SimTime::from_millis(50), cfg);
        let predicted = SimTime::from_micros(100);
        for _ in 0..40 {
            g.observe_launch(3, predicted, SimTime::from_micros(200));
        }
        assert_eq!(g.level(), GuardLevel::LcOnly);
        // The fault subsides: exact predictions drain the EWMA, then calm
        // observations walk the ladder back up.
        let mut ups = 0;
        for _ in 0..200 {
            if let Some(t) = g.observe_launch(3, predicted, predicted) {
                assert_eq!(t.reason, "recovered");
                assert!(t.to < t.from);
                ups += 1;
            }
        }
        assert_eq!(g.level(), GuardLevel::Fuse);
        assert_eq!(ups, 2);
        assert_eq!(g.margin(), SimTime::ZERO);
    }

    #[test]
    fn single_noisy_launch_cannot_trip() {
        let g = guard();
        // One wildly wrong launch, below the sample floor.
        assert_eq!(
            g.observe_launch(9, SimTime::from_micros(10), SimTime::from_millis(10)),
            None
        );
        assert_eq!(g.level(), GuardLevel::Fuse);
        assert_eq!(g.margin(), SimTime::ZERO);
    }
}
