//! Experiment configuration (Table II defaults).

use tacker_kernel::SimTime;

/// Configuration of a co-location experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// The LC QoS target (50 ms in the paper).
    pub qos_target: SimTime,
    /// LC load as a fraction of the service's peak supported load (0.8).
    pub load_factor: f64,
    /// Number of LC queries to simulate per run.
    pub queries: usize,
    /// RNG seed for the Poisson arrival process.
    pub seed: u64,
    /// Record the device activity timeline (costs memory; used by the
    /// Fig. 1/15 harnesses).
    pub record_timeline: bool,
    /// Threshold (relative error) beyond which fused-duration models are
    /// retrained online (0.10 in §VI-C).
    pub model_refresh_threshold: f64,
    /// Worker threads for the parallelizable phases (fusion-candidate
    /// measurement, model-fitting ratios, sweep fan-out). `0` means "use
    /// every core". Parallelism never changes results — the simulation is
    /// pure and every RNG stream is derived per run — so this is purely a
    /// wall-clock knob.
    pub jobs: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            qos_target: SimTime::from_millis(50),
            load_factor: 0.8,
            queries: 200,
            seed: 0x7ac4e2,
            record_timeline: false,
            model_refresh_threshold: 0.10,
            jobs: 0,
        }
    }
}

impl ExperimentConfig {
    /// Sets the query count.
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables timeline recording.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Sets the worker-thread count (`0` = every core).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the LC load factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < load ≤ 1.0`.
    pub fn with_load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load factor {load} out of range");
        self.load_factor = load;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = ExperimentConfig::default();
        assert_eq!(c.qos_target, SimTime::from_millis(50));
        assert!((c.load_factor - 0.8).abs() < 1e-12);
        assert!((c.model_refresh_threshold - 0.10).abs() < 1e-12);
    }

    #[test]
    fn builder_methods() {
        let c = ExperimentConfig::default()
            .with_queries(10)
            .with_seed(7)
            .with_load(0.5)
            .with_jobs(4)
            .with_timeline();
        assert_eq!(c.queries, 10);
        assert_eq!(c.seed, 7);
        assert_eq!(c.jobs, 4);
        assert!(c.record_timeline);
    }

    #[test]
    #[should_panic]
    fn zero_load_rejected() {
        let _ = ExperimentConfig::default().with_load(0.0);
    }
}
