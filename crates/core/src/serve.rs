//! The serving runtime and the unified [`ColocationRun`] builder.
//!
//! Every co-location experiment — batch or online — runs through one
//! event-driven engine: LC queries stream in under an [`ArrivalSpec`]
//! (paced Poisson, bursty, or trace replay), BE applications keep an
//! endless backlog, and the [`crate::manager::KernelManager`] is driven
//! at every completion. Serving mode adds two layers on top of the batch
//! semantics:
//!
//! * a **fault-injection layer** ([`crate::fault::FaultPlan`]) that
//!   perturbs realized kernel timings (mispredictions, stragglers),
//!   floods the device with uninvited BE work, and blinds the predictor —
//!   without ever touching the device's memoized execution caches;
//! * an **adaptive QoS guard** ([`crate::guard::QosGuard`]) that watches
//!   predicted-vs-actual errors and tail-latency pressure, inflates the
//!   headroom margin, and walks a degradation ladder (fuse →
//!   reorder-only → LC-only), recovering when the pressure subsides.
//!
//! With a zero [`FaultPlan`], Poisson arrivals and no guard, the engine
//! is bit-identical to the historical batch loop: same arrival streams,
//! same decisions, same report numbers. [`ColocationRun`] is the single
//! entry point for every co-location experiment.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tacker_kernel::{SimTime, StableHasher};
use tacker_sim::core::{Event, EventHandler, Schedule, Simulation, SimulationContext};
use tacker_sim::queue::{HeapQueue, SimQueue};
use tacker_sim::{scale_run, Device, ExecutablePlan, TimelineRecorder};
use tacker_trace::timeseries::{SpanKind, WindowRow, WindowSeries};
use tacker_trace::{MetricsRegistry, NoopSink, TraceEvent, TraceSink};
use tacker_workloads::{BeApp, LcService, WorkloadKernel};

use crate::config::ExperimentConfig;
use crate::error::TackerError;
use crate::fault::FaultPlan;
use crate::guard::{GuardConfig, GuardTransition, QosGuard};
use crate::library::FusionLibrary;
use crate::manager::{Decision, KernelManager, Policy};
use crate::metrics::{LatencyStats, DEFAULT_EXACT_LIMIT};
use crate::profile::KernelProfiler;
use crate::report::{GuardAudit, RunReport, ServiceReport, ViolationRecord};
use crate::server::calibrate_peak_interarrival;

/// Caps the violation-attribution and guard-audit logs so a pathological
/// run cannot grow the report without bound.
pub const VIOLATION_LOG_CAP: usize = 65_536;

/// Fault classes a [`ViolationRecord`] can carry, in the order the
/// engine's per-class fault counters use.
const FAULT_KINDS: [&str; 4] = ["mispredict", "straggler", "be_flood", "predictor_outage"];

/// One LC service with its configured load.
#[derive(Debug, Clone)]
pub struct ServiceLoad {
    /// The service.
    pub lc: LcService,
    /// Mean query inter-arrival time.
    pub mean_interarrival: SimTime,
    /// Seed of this service's arrival stream.
    pub seed: u64,
}

/// How LC queries arrive.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ArrivalSpec {
    /// Paced Poisson: exponential gaps with bounded burstiness (clipped to
    /// `[0.5, 2.2]×` the mean), normalized so the realized mean equals the
    /// target. The batch loop's historical arrival model.
    #[default]
    Poisson,
    /// The Poisson stream with arrivals grouped into back-to-back bursts
    /// of `burst` queries at the same overall rate.
    Bursty {
        /// Queries per burst (≥ 1; 1 degenerates to Poisson).
        burst: usize,
    },
    /// Replay explicit absolute arrival instants, one stream per service.
    /// Stream lengths override the configured query count.
    Replay(Vec<Vec<SimTime>>),
}

/// Telemetry collection options: latency retention and windowed
/// time-series. Pure observers — they never change scheduling decisions,
/// so any setting keeps zero-fault runs bit-identical to batch.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Exact latency samples retained per service (and for the
    /// aggregate) before [`LatencyStats`] spills into its fixed-memory
    /// sketch; `0` sketches from the first query.
    pub exact_limit: usize,
    /// Enable windowed time-series collection with this window width.
    pub window: Option<SimTime>,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            exact_limit: DEFAULT_EXACT_LIMIT,
            window: None,
        }
    }
}

impl TelemetryOptions {
    /// Sets the exact latency sample limit.
    #[must_use]
    pub fn with_exact_limit(mut self, limit: usize) -> Self {
        self.exact_limit = limit;
        self
    }

    /// Enables windowed time-series collection with this window width.
    #[must_use]
    pub fn with_window(mut self, width: SimTime) -> Self {
        self.window = Some(width);
        self
    }
}

/// Serving-mode options: arrival process, fault plan, the optional QoS
/// guard, and telemetry collection. The default is indistinguishable
/// from a batch run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// Faults to inject.
    pub faults: FaultPlan,
    /// Enable the adaptive QoS guard with this configuration.
    pub guard: Option<GuardConfig>,
    /// Telemetry collection options.
    pub telemetry: TelemetryOptions,
    /// Enable the steady-state fast path (default on): a warm query that
    /// is alone in flight, with no admissible BE work, no faults and no
    /// trace sink, replays from its cached [`QueryProfile`] instead of
    /// driving the decision loop. Bit-identical to the slow path by
    /// construction; the engine falls back automatically whenever any
    /// engagement condition fails. Turn off to force the full decision
    /// loop (e.g. when benchmarking it).
    pub fast_path: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            arrivals: ArrivalSpec::default(),
            faults: FaultPlan::default(),
            guard: None,
            telemetry: TelemetryOptions::default(),
            fast_path: true,
        }
    }
}

impl ServeOptions {
    /// Sets the arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, spec: ArrivalSpec) -> Self {
        self.arrivals = spec;
        self
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enables the adaptive QoS guard with this configuration.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Sets the telemetry collection options.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryOptions) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables or disables the steady-state fast path.
    #[must_use]
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }
}

/// Builder for co-location runs, replacing the eight `run_colocation*`
/// entry points.
///
/// ```no_run
/// use std::sync::Arc;
/// use tacker::prelude::*;
///
/// let device = Arc::new(tacker_sim::Device::new(tacker_sim::GpuSpec::rtx2080ti()));
/// let lc = tacker_workloads::lc_service("Resnet50", &device).unwrap();
/// let be = vec![tacker_workloads::be_app("sgemm").unwrap()];
/// let config = ExperimentConfig::default();
/// let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
///     .unwrap()
///     .policy(Policy::Tacker)
///     .run()
///     .unwrap();
/// if let Some(p99) = report.p99_latency() {
///     println!("p99 latency: {p99}");
/// }
/// ```
pub struct ColocationRun<'a> {
    device: &'a Arc<Device>,
    config: ExperimentConfig,
    lcs: Vec<LcService>,
    bes: Vec<BeApp>,
    policy: Policy,
    mean_interarrival: Option<SimTime>,
    loads: Option<Vec<ServiceLoad>>,
    sink: Arc<dyn TraceSink>,
    options: ServeOptions,
}

impl<'a> ColocationRun<'a> {
    /// Starts a run of `lcs` against `be_apps` on `device` with
    /// `Policy::Tacker`, calibrated per-service load, no tracing, no
    /// faults and no guard.
    ///
    /// # Errors
    ///
    /// Returns [`TackerError::Config`] when no service is given or a
    /// service has no kernels.
    pub fn new(
        device: &'a Arc<Device>,
        config: &ExperimentConfig,
        lcs: &[LcService],
        be_apps: &[BeApp],
    ) -> Result<ColocationRun<'a>, TackerError> {
        if lcs.is_empty() || lcs.iter().any(|s| s.query_kernels().is_empty()) {
            return Err(TackerError::Config {
                reason: "need at least one LC service, each with kernels".to_string(),
            });
        }
        Ok(ColocationRun {
            device,
            config: config.clone(),
            lcs: lcs.to_vec(),
            bes: be_apps.to_vec(),
            policy: Policy::Tacker,
            mean_interarrival: None,
            loads: None,
            sink: Arc::new(NoopSink),
            options: ServeOptions::default(),
        })
    }

    /// Selects the scheduling policy (default [`Policy::Tacker`]).
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the calibrated load factor (fraction of peak load,
    /// `0 < load ≤ 1`).
    ///
    /// # Panics
    ///
    /// Panics when `load` is out of range (as
    /// [`ExperimentConfig::with_load`] does).
    #[must_use]
    pub fn at_load(mut self, load: f64) -> Self {
        self.config = self.config.with_load(load);
        self
    }

    /// Uses an explicit mean query inter-arrival time, skipping peak-load
    /// calibration. Only valid for single-service runs; multi-service
    /// runs use [`ColocationRun::with_loads`].
    #[must_use]
    pub fn at(mut self, mean_interarrival: SimTime) -> Self {
        self.mean_interarrival = Some(mean_interarrival);
        self
    }

    /// Uses explicit per-service loads (services and arrival seeds
    /// included), overriding the services given to `new`.
    #[must_use]
    pub fn with_loads(mut self, loads: &[ServiceLoad]) -> Self {
        self.loads = Some(loads.to_vec());
        self
    }

    /// Streams runtime events to `sink`: one
    /// [`TraceEvent::Decision`] per scheduling point, a
    /// [`TraceEvent::KernelRetired`] per device launch, plus fusion
    /// rejections, model refreshes, query completions, and (in serving
    /// mode) fault injections, guard steps and QoS violations.
    #[must_use]
    pub fn traced(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Selects the arrival process (default [`ArrivalSpec::Poisson`]).
    #[must_use]
    pub fn arrivals(mut self, spec: ArrivalSpec) -> Self {
        self.options.arrivals = spec;
        self
    }

    /// Injects faults from `plan`.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.options.faults = plan;
        self
    }

    /// Enables the adaptive QoS guard.
    #[must_use]
    pub fn guarded(mut self, config: GuardConfig) -> Self {
        self.options.guard = Some(config);
        self
    }

    /// Enables windowed time-series telemetry with the given window
    /// width: one [`WindowRow`] per non-empty window lands in
    /// [`RunReport::windows`] (and on the trace sink as
    /// [`TraceEvent::WindowStats`] when tracing).
    #[must_use]
    pub fn windowed(mut self, width: SimTime) -> Self {
        self.options.telemetry.window = Some(width);
        self
    }

    /// Sets how many exact latency samples are retained before spilling
    /// into the fixed-memory quantile sketch (`0` = sketch from the
    /// first query). Default [`DEFAULT_EXACT_LIMIT`].
    #[must_use]
    pub fn latency_exact_limit(mut self, limit: usize) -> Self {
        self.options.telemetry.exact_limit = limit;
        self
    }

    /// Enables or disables the steady-state fast path (default on; see
    /// [`ServeOptions::fast_path`]).
    #[must_use]
    pub fn steady_fast_path(mut self, on: bool) -> Self {
        self.options.fast_path = on;
        self
    }

    /// Replaces all serving options at once.
    #[must_use]
    pub fn serve(mut self, options: ServeOptions) -> Self {
        self.options = options;
        self
    }

    /// Executes the run.
    ///
    /// # Errors
    ///
    /// Propagates simulation, fusion and prediction errors, or a
    /// [`TackerError::Config`] for unusable load/arrival combinations.
    pub fn run(self) -> Result<RunReport, TackerError> {
        let services: Vec<ServiceLoad> = if let Some(loads) = self.loads {
            loads
        } else if let Some(mean_interarrival) = self.mean_interarrival {
            if self.lcs.len() != 1 {
                return Err(TackerError::Config {
                    reason: "explicit inter-arrival needs exactly one service; use with_loads"
                        .to_string(),
                });
            }
            vec![ServiceLoad {
                lc: self.lcs[0].clone(),
                mean_interarrival,
                seed: self.config.seed,
            }]
        } else {
            // Each service carries an equal share of the configured load
            // so the combined LC demand stays feasible. Calibration runs
            // one full LC-only simulation per service, so multi-service
            // setups fan the (independent, cached) calibrations out over
            // the persistent pool; results join in service order, and
            // per-service seeds depend only on the service index, so the
            // loads are identical at any jobs count.
            let share = self.lcs.len() as f64 / self.config.load_factor.max(1e-6);
            let device = Arc::clone(self.device);
            let config = self.config.clone();
            let peaks =
                tacker_par::try_pool_map(self.config.jobs, self.lcs.clone(), move |_, lc| {
                    calibrate_peak_interarrival(&device, lc, &config)
                })?;
            self.lcs
                .iter()
                .zip(peaks)
                .enumerate()
                .map(|(i, (lc, peak))| ServiceLoad {
                    lc: lc.clone(),
                    mean_interarrival: peak.mul_f64(share),
                    seed: self.config.seed.wrapping_add(i as u64),
                })
                .collect()
        };
        run_engine(
            self.device,
            &services,
            &self.bes,
            self.policy,
            &self.config,
            self.sink,
            &self.options,
        )
    }
}

/// Replay profile of one service's full query for the steady-state fast
/// path: the shared zero-fault run of every kernel in sequence, plus the
/// per-kernel identities the guard keys its launch observations on.
/// Profiles are keyed by the query's plan-sequence fingerprint (the
/// [`tacker_kernel::StableHasher`] fold of every kernel launch
/// fingerprint), so two services with identical kernel sequences share
/// one entry — and a warm query costs one hash lookup, not one device
/// cache probe per kernel.
struct QueryProfile {
    /// Memoized zero-fault runs, shared with the device cache.
    runs: Vec<Arc<tacker_sim::KernelRun>>,
    /// Per-kernel def fingerprints for [`QosGuard::observe_launch`].
    kernel_ids: Vec<u64>,
    /// Sum of the run durations — a warm query's exact wall time.
    total: SimTime,
}

struct ActiveQuery {
    /// Index of the owning service.
    service: usize,
    arrival: SimTime,
    deadline: SimTime,
    pending: VecDeque<usize>, // indices into the service's kernel sequence
    remaining_pred: SimTime,
    /// In-flight queries at admission (attribution context).
    depth_at_admission: usize,
    /// Snapshot of the per-class fault counters at admission; the delta
    /// at completion names the faults in effect while in flight.
    faults_at_admission: [u64; 4],
}

struct BeState {
    app: BeApp,
    queue: VecDeque<WorkloadKernel>,
}

impl BeState {
    fn head(&mut self) -> Option<WorkloadKernel> {
        if self.queue.is_empty() {
            // Endless task stream: refill with the next iteration.
            self.queue.extend(self.app.task_kernels().iter().cloned());
        }
        self.queue.front().cloned()
    }

    fn pop(&mut self) {
        self.queue.pop_front();
    }
}

/// Materializes the per-service arrival streams. Shared with the fleet
/// dispatcher ([`crate::fleet`]), which generates one fleet-level set of
/// streams and replays per-device slices of it.
pub(crate) fn generate_arrivals(
    services: &[ServiceLoad],
    config: &ExperimentConfig,
    spec: &ArrivalSpec,
) -> Result<Vec<Vec<SimTime>>, TackerError> {
    if let ArrivalSpec::Replay(streams) = spec {
        if streams.len() != services.len() {
            return Err(TackerError::Config {
                reason: format!(
                    "replay needs one arrival stream per service ({} streams, {} services)",
                    streams.len(),
                    services.len()
                ),
            });
        }
        if streams.iter().any(Vec::is_empty) {
            return Err(TackerError::Config {
                reason: "replay arrival streams must not be empty".to_string(),
            });
        }
        return Ok(streams
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.sort();
                s
            })
            .collect());
    }
    let burst = match spec {
        ArrivalSpec::Bursty { burst } => (*burst).max(1),
        _ => 1,
    };
    // Exponential gaps with bounded burstiness (clipped to [0.5, 2.2]x the
    // mean), normalized so the realized mean equals the target. An
    // unbounded open-loop Poisson stream at meaningful load has latency
    // tails that *no* non-preemptive scheduler can keep under a 50 ms QoS;
    // production inference frontends pace dispatch the same way (see
    // DESIGN.md §5).
    let mut arrivals_per_service = Vec::with_capacity(services.len());
    for svc in services {
        let mut rng = StdRng::seed_from_u64(svc.seed);
        let mut gaps: Vec<f64> = (0..config.queries)
            .map(|_| (-(rng.random::<f64>().max(1e-12)).ln()).clamp(0.5, 2.2))
            .collect();
        let mean_gap: f64 = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        for g in &mut gaps {
            *g /= mean_gap.max(1e-12);
        }
        let mut arrivals = Vec::with_capacity(config.queries);
        let mut t = SimTime::ZERO;
        let mut burst_start = SimTime::ZERO;
        for (i, g) in gaps.iter().enumerate() {
            t += svc.mean_interarrival.mul_f64(*g);
            if i % burst == 0 {
                burst_start = t;
            }
            arrivals.push(burst_start);
        }
        arrivals_per_service.push(arrivals);
    }
    Ok(arrivals_per_service)
}

/// The LC arrival process as a component on the `tacker_sim::core`
/// kernel: every arrival across all services is one scheduled event
/// whose payload indexes the merged, `(time, service)`-sorted stream.
/// [`run_engine`] drains it with [`Simulation::run_until`] at each loop
/// head; delivery order is the kernel's `(time, seq)` order, which is
/// exactly the historical per-service-cursor-then-sort admission order
/// because events are scheduled in merged order (equal times keep their
/// schedule sequence) and `SimTime` nanoseconds below 2⁵³ (~104 days)
/// convert to `f64` exactly.
struct ArrivalProcess {
    /// All arrivals, globally sorted by `(time, service)`.
    merged: Vec<(SimTime, usize)>,
    /// Arrivals delivered so far — a prefix of `merged`, because the
    /// kernel pops in schedule order here.
    delivered: usize,
    /// Merged indexes delivered by the current drain, in admission order.
    admitted: Vec<u32>,
}

impl ArrivalProcess {
    /// Builds the component and its calendar from the per-service
    /// streams (each already sorted by [`generate_arrivals`]).
    fn new(arrivals_per_service: &[Vec<SimTime>]) -> (Simulation<HeapQueue>, ArrivalProcess) {
        let mut merged: Vec<(SimTime, usize)> = arrivals_per_service
            .iter()
            .enumerate()
            .flat_map(|(si, stream)| stream.iter().map(move |&t| (t, si)))
            .collect();
        merged.sort();
        let mut sim = Simulation::new(HeapQueue::new());
        for (i, &(t, _)) in merged.iter().enumerate() {
            sim.schedule(t.as_nanos() as f64, i as u32);
        }
        let proc = ArrivalProcess {
            merged,
            delivered: 0,
            admitted: Vec::new(),
        };
        (sim, proc)
    }

    /// Drains every arrival with time ≤ `now` into `admitted`
    /// (cleared first), returning the admitted `(time, service)` pairs'
    /// indexes in delivery order.
    fn drain(&mut self, sim: &mut Simulation<HeapQueue>, now: SimTime) -> &[u32] {
        self.admitted.clear();
        sim.run_until(now.as_nanos() as f64, self);
        &self.admitted
    }

    /// The arrival at merged index `i`.
    fn get(&self, i: u32) -> (SimTime, usize) {
        self.merged[i as usize]
    }

    /// The next undelivered arrival time, if any.
    fn upcoming(&self) -> Option<SimTime> {
        self.merged.get(self.delivered).map(|&(t, _)| t)
    }
}

impl<Q: SimQueue> EventHandler<Q> for ArrivalProcess {
    fn on_event(&mut self, event: Event, _ctx: &mut SimulationContext<'_, Q>) {
        debug_assert_eq!(event.payload as usize, self.delivered);
        self.delivered += 1;
        self.admitted.push(event.payload);
    }
}

/// The event-driven engine behind every [`ColocationRun`].
pub(crate) fn run_engine(
    device: &Arc<Device>,
    services: &[ServiceLoad],
    be_apps: &[BeApp],
    policy: Policy,
    config: &ExperimentConfig,
    sink: Arc<dyn TraceSink>,
    opts: &ServeOptions,
) -> Result<RunReport, TackerError> {
    if services.is_empty() || services.iter().any(|s| s.lc.query_kernels().is_empty()) {
        return Err(TackerError::Config {
            reason: "need at least one LC service, each with kernels".to_string(),
        });
    }
    let tracing = sink.enabled();
    let registry = MetricsRegistry::new();
    let profiler = Arc::new(KernelProfiler::with_sink(
        Arc::clone(device),
        Arc::clone(&sink),
    ));
    let library = Arc::new(FusionLibrary::new(Arc::clone(&profiler)).with_jobs(config.jobs));
    let faults = &opts.faults;
    let serving = opts.guard.is_some() || !faults.is_zero();
    let guard = opts
        .guard
        .clone()
        .map(|g| Arc::new(QosGuard::new(config.qos_target, g)));
    let mut manager = KernelManager::with_sink(
        Arc::clone(&profiler),
        Arc::clone(&library),
        policy,
        Arc::clone(&sink),
    );
    if let Some(g) = &guard {
        manager = manager.with_guard(Arc::clone(g));
    }
    // Metric handles resolved once; hot-loop updates are atomic ops. The
    // serve counters are only registered in serving mode so batch runs
    // render the exact same metric set as before.
    let m_decisions = registry.counter("decisions");
    let m_violations = registry.counter("qos_violations");
    let m_budget = registry.gauge("injection_budget_ns");
    let m_latency_all = registry.histogram("query_latency_us");
    let m_guard_steps = serving.then(|| registry.counter("guard_steps"));
    let m_faults = serving.then(|| registry.counter("faults_injected"));

    let arrivals_per_service = generate_arrivals(services, config, &opts.arrivals)?;

    // Warm the profiler with one measurement of every LC kernel (the
    // paper's "historical data": these exact kernels recur every query), so
    // remaining-time accounting predicts them exactly.
    let mut kernel_preds: Vec<Vec<SimTime>> = Vec::with_capacity(services.len());
    let mut query_total_pred: Vec<SimTime> = Vec::with_capacity(services.len());
    for svc in services {
        for k in svc.lc.query_kernels() {
            profiler.measure(k)?;
        }
        let preds: Vec<SimTime> = svc
            .lc
            .query_kernels()
            .iter()
            .map(|k| profiler.predict(k))
            .collect::<Result<_, _>>()?;
        query_total_pred.push(preds.iter().copied().sum());
        kernel_preds.push(preds);
    }

    // Fault sampling resolved up front: which LC kernel positions of which
    // service run persistently slower than their profile says.
    let mispredict: Vec<Vec<f64>> = services
        .iter()
        .map(|svc| {
            (0..svc.lc.query_kernels().len())
                .map(|i| faults.mispredict_factor(svc.lc.name(), i))
                .collect()
        })
        .collect();

    let mut be_states: Vec<BeState> = be_apps
        .iter()
        .map(|a| BeState {
            app: a.clone(),
            queue: VecDeque::new(),
        })
        .collect();

    // Steady-state fast path (see ServeOptions::fast_path): eligible only
    // when nothing can perturb a warm query's decision sequence — no
    // faults (each LC launch realizes its memoized timing), no trace sink
    // (Decision events would embed per-point headroom the replay skips
    // computing), and no admissible BE work (the manager returns RunLc
    // for a lone LC head regardless of headroom). Per-query engagement
    // conditions (alone in flight, no arrival before retirement) are
    // checked in the loop.
    let fast_path = opts.fast_path
        && !tracing
        && faults.is_zero()
        && (be_states.is_empty() || !policy.best_effort_enabled());
    // Replay profiles, keyed by plan-sequence fingerprint. Built from the
    // same memoized runs the decision loop would fetch, so a profile
    // replay advances time by exactly the durations the slow path sees.
    let mut profiles: HashMap<u64, QueryProfile> = HashMap::new();
    let mut service_fp: Vec<u64> = Vec::with_capacity(services.len());
    if fast_path {
        for svc in services {
            let mut hasher = StableHasher::new();
            let mut runs = Vec::with_capacity(svc.lc.query_kernels().len());
            let mut kernel_ids = Vec::with_capacity(svc.lc.query_kernels().len());
            for k in svc.lc.query_kernels() {
                let launch = k.launch();
                hasher.write_u64(launch.fingerprint());
                kernel_ids.push(k.def.id().get());
                runs.push(device.run_launch(&launch)?);
            }
            let fp = hasher.finish();
            service_fp.push(fp);
            profiles.entry(fp).or_insert_with(|| QueryProfile {
                total: runs.iter().map(|r| r.duration).sum(),
                runs,
                kernel_ids,
            });
        }
    }

    let mut now = SimTime::ZERO;
    let (mut arrival_sim, mut arrival_proc) = ArrivalProcess::new(&arrivals_per_service);
    let mut active: VecDeque<ActiveQuery> = VecDeque::new();
    // Best-effort injection budget. Headroom alone is blind to *future*
    // arrivals: BE work injected into a busy period delays every query that
    // joins that busy period later, 1:1. The budget therefore replenishes
    // only during genuinely idle time and is capped at a small fraction of
    // the QoS target, bounding how far any arrival cluster can be
    // stretched by work injected before the cluster was visible.
    // Signed, in nanoseconds: over-predictions drive it negative (debt),
    // blocking further injection until idle time repays it.
    let budget_cap = config.qos_target.mul_f64(0.08).as_nanos() as i128;
    let mut budget: i128 = budget_cap * 3 / 10;
    // Safety margin absorbing prediction noise when filling headroom.
    let safety = config.qos_target.mul_f64(0.10);
    // "Unbounded" headroom seed for the Equation 9 minimum — shared by
    // the decision loop and the fast-path replay so both observe the
    // same clamped value into the window series.
    let headroom_init = SimTime::from_millis(u64::MAX / 2_000_000);
    let exact_limit = opts.telemetry.exact_limit;
    // Windowed time-series collection: closed rows stream to the sink as
    // WindowStats events (when tracing) and collect into the report.
    let mut windows = opts.telemetry.window.map(WindowSeries::new);
    let window_sink = Arc::clone(&sink);
    let mut emit_window = move |row: &WindowRow| {
        if tracing {
            window_sink.record(TraceEvent::WindowStats { row: row.clone() });
        }
    };
    // Fused-plan cache counters are device-lifetime; track deltas so the
    // windows only see this run's traffic.
    let mut last_cache = windows.is_some().then(|| device.fused_cache_stats());
    // Per-class fault counters (FAULT_KINDS order) for attribution.
    let mut fault_counts = [0u64; 4];
    // The last co-running BE kernel launched, as (name, fingerprint) —
    // the co-runner a violation is attributed to.
    let mut last_be: Option<(String, u64)> = None;
    // Last guard ladder level pushed into the window series.
    let mut last_guard_level: Option<crate::guard::GuardLevel> = None;
    let mut report = RunReport {
        policy,
        qos_target: config.qos_target,
        services: services
            .iter()
            .map(|svc| ServiceReport {
                name: svc.lc.name().to_string(),
                latency: LatencyStats::with_limit(exact_limit),
                qos_violations: 0,
                latency_histogram: registry
                    .histogram(&format!("query_latency_us.{}", svc.lc.name())),
            })
            .collect(),
        be_work: SimTime::ZERO,
        be_kernels: 0,
        fused_launches: 0,
        reordered_launches: 0,
        wall: SimTime::ZERO,
        busy: SimTime::ZERO,
        model_refreshes: 0,
        timeline: config.record_timeline.then(TimelineRecorder::new),
        latency_histogram: Arc::clone(&m_latency_all),
        metrics: registry.clone(),
        guard_steps: 0,
        faults_injected: 0,
        guard_level: None,
        latency: LatencyStats::with_limit(exact_limit),
        windows: Vec::new(),
        violation_log: Vec::new(),
        guard_log: Vec::new(),
    };

    let run_kernel = |wk: &WorkloadKernel| -> Result<Arc<tacker_sim::KernelRun>, TackerError> {
        Ok(device.run_launch(&wk.launch())?)
    };
    // One KernelRetired event per device launch, carrying the manager's
    // predicted duration next to the realized one.
    let retire = |sink: &dyn TraceSink,
                  run: &tacker_sim::KernelRun,
                  label: &str,
                  end: SimTime,
                  predicted: SimTime| {
        sink.record(TraceEvent::KernelRetired {
            kernel: run.name.clone(),
            label: label.into(),
            start: end.saturating_sub(run.duration),
            end,
            tc_util: run.summary.tc_util,
            cd_util: run.summary.cd_util,
            predicted,
            actual: run.duration,
        });
    };
    // Bookkeeping for one injected fault application. Also bumps the
    // per-class counter used for violation attribution.
    let fault_event = |report: &mut RunReport,
                       counts: &mut [u64; 4],
                       at: SimTime,
                       kind: &'static str,
                       kernel: &str,
                       factor: f64| {
        report.faults_injected += 1;
        let class = FAULT_KINDS
            .iter()
            .position(|k| *k == kind)
            .expect("known fault class");
        counts[class] += 1;
        if let Some(m) = &m_faults {
            m.inc();
        }
        if tracing {
            sink.record(TraceEvent::FaultInjected {
                at,
                kind: kind.into(),
                kernel: kernel.into(),
                factor,
            });
        }
    };
    // Bookkeeping for one guard ladder step: report counter, audit log,
    // and trace event.
    let guard_note = |report: &mut RunReport, at: SimTime, step: Option<GuardTransition>| {
        if let Some(t) = step {
            report.guard_steps += 1;
            if report.guard_log.len() < VIOLATION_LOG_CAP {
                report.guard_log.push(GuardAudit {
                    at,
                    from: t.from,
                    to: t.to,
                    reason: t.reason,
                    ewma_error: t.ewma_error,
                    pressure: t.pressure,
                });
            }
            if let Some(m) = &m_guard_steps {
                m.inc();
            }
            if tracing {
                sink.record(TraceEvent::GuardStep {
                    at,
                    from: t.from.name().into(),
                    to: t.to.name().into(),
                    reason: t.reason.into(),
                    ewma_error: t.ewma_error,
                    pressure: t.pressure,
                });
            }
        }
    };

    let total_queries: usize = arrivals_per_service.iter().map(Vec::len).sum();
    let mut completed = 0usize;
    let mut launch_seq: u64 = 0;
    let mut next_flood = 0usize;
    let mut in_outage = false;

    loop {
        // Uninvited BE bursts (a misbehaving co-tenant): executed outside
        // the scheduler's ledger, before it gets to decide anything.
        while next_flood < faults.be_floods.len() && faults.be_floods[next_flood].at <= now {
            let burst = faults.be_floods[next_flood];
            next_flood += 1;
            if be_states.is_empty() {
                continue;
            }
            fault_event(
                &mut report,
                &mut fault_counts,
                now,
                "be_flood",
                "",
                f64::from(burst.kernels),
            );
            for i in 0..burst.kernels as usize {
                let bi = i % be_states.len();
                let Some(wk) = be_states[bi].head() else {
                    continue;
                };
                let predicted = profiler.predict(&wk)?;
                let run = run_kernel(&wk)?;
                launch_seq += 1;
                now += run.duration;
                report.busy += run.duration;
                report.be_work += run.duration;
                report.be_kernels += 1;
                be_states[bi].pop();
                last_be = Some((wk.def.name().to_string(), wk.def.id().get()));
                if let Some(ws) = windows.as_mut() {
                    let (tc, cd) = run.pipe_utilizations();
                    ws.on_span(
                        now.saturating_sub(run.duration),
                        now,
                        tc,
                        cd,
                        SpanKind::Be,
                        &mut emit_window,
                    );
                }
                if tracing {
                    retire(sink.as_ref(), &run, "BE", now, predicted);
                }
                if let Some(tl) = report.timeline.as_mut() {
                    tl.advance_to(now.saturating_sub(run.duration));
                    tl.record(&run, "BE");
                }
            }
        }
        // Predictor-outage windows: bypass exact launch history while one
        // is active (predictions fall back to the LR models).
        let outage = faults.outage_active(now);
        if outage != in_outage {
            in_outage = outage;
            profiler.set_history_bypass(outage);
            if outage {
                fault_event(
                    &mut report,
                    &mut fault_counts,
                    now,
                    "predictor_outage",
                    "",
                    1.0,
                );
            }
        }

        // Admit arrivals from every service, oldest first: drain the
        // arrival component's calendar up to the engine's clock.
        for i in 0..arrival_proc.drain(&mut arrival_sim, now).len() {
            let (arrival, si) = arrival_proc.get(arrival_proc.admitted[i]);
            if let Some(ws) = windows.as_mut() {
                ws.on_arrivals(arrival, 1, &mut emit_window);
            }
            active.push_back(ActiveQuery {
                service: si,
                arrival,
                deadline: arrival + config.qos_target,
                pending: (0..services[si].lc.query_kernels().len()).collect(),
                remaining_pred: query_total_pred[si],
                depth_at_admission: active.len(),
                faults_at_admission: fault_counts,
            });
            if let Some(ws) = windows.as_mut() {
                ws.on_queue_depth(active.len() as u64);
            }
        }
        if active.is_empty() && completed >= total_queries {
            break;
        }

        // Steady-state fast path: when the front query is alone in
        // flight and no arrival can land before it retires, the whole
        // query replays from its cached profile — per kernel, a few
        // field reads off the shared runs plus exactly the metric,
        // window, guard and timeline updates the decision loop would
        // make (in the same order, so reports and guard state stay
        // bit-identical). The shared retirement block below then
        // observes the query as usual.
        let mut fast_done = false;
        if fast_path && active.len() == 1 {
            if let Some(q) = active.front_mut() {
                if !q.pending.is_empty() {
                    let si = q.service;
                    let profile = &profiles[&service_fp[si]];
                    // A fresh query (the steady-state case) needs no
                    // per-kernel sum; a query the slow path already
                    // started sums what is left.
                    let remaining: SimTime = if q.pending.len() == profile.runs.len() {
                        profile.total
                    } else {
                        q.pending.iter().map(|&i| profile.runs[i].duration).sum()
                    };
                    let upcoming = arrival_proc.upcoming();
                    // Strict: an arrival exactly at retirement time is
                    // admitted by the next slow-path iteration either way,
                    // but stay conservative and let the slow path handle it.
                    if upcoming.is_none_or(|t| t > now + remaining) {
                        while let Some(idx) = q.pending.pop_front() {
                            let run = &profile.runs[idx];
                            let predicted = kernel_preds[si][idx];
                            if let Some(ws) = windows.as_mut() {
                                let slack = q
                                    .deadline
                                    .saturating_sub(now)
                                    .saturating_sub(q.remaining_pred)
                                    .saturating_sub(safety);
                                ws.observe_headroom(
                                    now,
                                    headroom_init.min(slack),
                                    &mut emit_window,
                                );
                            }
                            m_decisions.inc();
                            m_budget.set(budget as f64);
                            launch_seq += 1;
                            now += run.duration;
                            report.busy += run.duration;
                            q.remaining_pred = q.remaining_pred.saturating_sub(predicted);
                            if let Some(ws) = windows.as_mut() {
                                ws.on_span(
                                    now.saturating_sub(run.duration),
                                    now,
                                    run.summary.tc_util,
                                    run.summary.cd_util,
                                    SpanKind::Lc,
                                    &mut emit_window,
                                );
                            }
                            if let Some(g) = &guard {
                                let step = g.observe_launch(
                                    profile.kernel_ids[idx],
                                    predicted,
                                    run.duration,
                                );
                                guard_note(&mut report, now, step);
                            }
                            if let Some(tl) = report.timeline.as_mut() {
                                tl.advance_to(now.saturating_sub(run.duration));
                                tl.record(run, "LC");
                            }
                            // The slow path pushes guard-level changes into
                            // the window series once per kernel; replay the
                            // check at the same cadence. Fused-plan cache
                            // stats cannot move here (no device calls).
                            if let Some(ws) = windows.as_mut() {
                                let level = guard.as_ref().map(|g| g.level());
                                if level != last_guard_level {
                                    last_guard_level = level;
                                    ws.set_guard(level.map(crate::guard::GuardLevel::name));
                                }
                            }
                        }
                        fast_done = true;
                    }
                }
            }
        }

        if !fast_done {
            // QoS headroom: the tightest slack over all active queries, with
            // each query reserving the remaining GPU time of itself and every
            // earlier query (Equation 9), minus a small safety margin for
            // prediction noise, and capped by the injection budget.
            let mut headroom = headroom_init;
            let mut cum = SimTime::ZERO;
            for q in &active {
                cum += q.remaining_pred;
                let slack = q
                    .deadline
                    .saturating_sub(now)
                    .saturating_sub(cum)
                    .saturating_sub(safety);
                headroom = headroom.min(slack);
            }
            if active.is_empty() {
                headroom = SimTime::ZERO;
            } else if let Some(ws) = windows.as_mut() {
                ws.observe_headroom(now, headroom, &mut emit_window);
            }
            // Reordering whole BE kernels into the headroom is what stretches
            // busy periods, so it is budget-capped. Fusion's extra time is an
            // order of magnitude smaller per unit of BE work, so it gets a
            // small grace on top of the budget — but its actual cost is still
            // charged, driving the budget into debt that blocks further
            // injection until idle time repays it.
            let budget_time = SimTime::from_nanos(budget.max(0) as u64);
            let reorder_headroom = headroom.min(budget_time);
            // Fusion may run the budget into bounded debt: its extras are small
            // and high-leverage, so a per-busy-period allowance (the grace, up
            // to the debt floor) keeps cheap fusions flowing while expensive
            // ones are cut off quickly.
            let grace = config.qos_target.mul_f64(0.01);
            let debt_floor = -(config.qos_target.mul_f64(0.05).as_nanos() as i128);
            let fusion_headroom = if budget > debt_floor {
                headroom.min(budget_time + grace)
            } else {
                SimTime::ZERO
            };

            let lc_head = active
                .front()
                .and_then(|q| q.pending.front().map(|&i| (q.service, i)))
                .map(|(si, i)| &services[si].lc.query_kernels()[i]);
            let be_heads: Vec<Option<WorkloadKernel>> = if policy.best_effort_enabled() {
                be_states.iter_mut().map(BeState::head).collect()
            } else {
                vec![None; be_states.len()]
            };

            let was_idle = active.is_empty();
            manager.set_now(now);
            m_decisions.inc();
            m_budget.set(budget as f64);
            // With multiple active queries the oldest executes first and the
            // Equation 9 headroom above already reserves the remaining GPU time
            // of every query, so fusion stays enabled (§VII-B-2's accounting).
            let decision =
                manager.decide(lc_head, fusion_headroom, reorder_headroom, &be_heads, false)?;
            match decision {
                Decision::RunLc { predicted } => {
                    let q = active.front_mut().expect("RunLc implies an active query");
                    let si = q.service;
                    let idx = q
                        .pending
                        .pop_front()
                        .expect("RunLc implies a pending kernel");
                    let mut run = run_kernel(&services[si].lc.query_kernels()[idx])?;
                    launch_seq += 1;
                    let mf = mispredict[si][idx];
                    if mf != 1.0 {
                        fault_event(
                            &mut report,
                            &mut fault_counts,
                            now,
                            "mispredict",
                            &run.name,
                            mf,
                        );
                    }
                    let sf = faults.straggler_factor(launch_seq);
                    if sf != 1.0 {
                        fault_event(
                            &mut report,
                            &mut fault_counts,
                            now,
                            "straggler",
                            &run.name,
                            sf,
                        );
                    }
                    if mf * sf != 1.0 {
                        run = Arc::new(scale_run(&run, mf * sf));
                    }
                    now += run.duration;
                    report.busy += run.duration;
                    q.remaining_pred = q.remaining_pred.saturating_sub(kernel_preds[si][idx]);
                    if let Some(ws) = windows.as_mut() {
                        let (tc, cd) = run.pipe_utilizations();
                        ws.on_span(
                            now.saturating_sub(run.duration),
                            now,
                            tc,
                            cd,
                            SpanKind::Lc,
                            &mut emit_window,
                        );
                    }
                    if tracing {
                        retire(sink.as_ref(), &run, "LC", now, predicted);
                    }
                    if let Some(g) = &guard {
                        let kernel = services[si].lc.query_kernels()[idx].def.id().get();
                        let step = g.observe_launch(kernel, predicted, run.duration);
                        guard_note(&mut report, now, step);
                    }
                    if let Some(tl) = report.timeline.as_mut() {
                        tl.advance_to(now.saturating_sub(run.duration));
                        tl.record(&run, "LC");
                    }
                }
                Decision::RunFused {
                    be_index,
                    launch,
                    entry,
                    x_tc,
                    x_cd,
                    lc_predicted,
                    predicted,
                    ..
                } => {
                    let plan = ExecutablePlan::from_launch(device.spec(), &launch)?;
                    // LC kernel completed via fusion.
                    let q = active.front_mut().expect("fusion implies an active query");
                    let si = q.service;
                    let idx = q
                        .pending
                        .pop_front()
                        .expect("fusion implies a pending kernel");
                    let mut run = device.run_plan(&plan)?;
                    launch_seq += 1;
                    // A mispredicted LC kernel is just as slow inside a fused
                    // launch as outside it.
                    let mf = mispredict[si][idx];
                    if mf != 1.0 {
                        fault_event(
                            &mut report,
                            &mut fault_counts,
                            now,
                            "mispredict",
                            &run.name,
                            mf,
                        );
                    }
                    let sf = faults.straggler_factor(launch_seq);
                    if sf != 1.0 {
                        fault_event(
                            &mut report,
                            &mut fault_counts,
                            now,
                            "straggler",
                            &run.name,
                            sf,
                        );
                    }
                    if mf * sf != 1.0 {
                        run = Arc::new(scale_run(&run, mf * sf));
                    }
                    now += run.duration;
                    report.busy += run.duration;
                    if let Some(ws) = windows.as_mut() {
                        let (tc, cd) = run.pipe_utilizations();
                        ws.on_span(
                            now.saturating_sub(run.duration),
                            now,
                            tc,
                            cd,
                            SpanKind::Fused,
                            &mut emit_window,
                        );
                    }
                    if tracing {
                        retire(sink.as_ref(), &run, "FUSED", now, predicted);
                    }
                    q.remaining_pred = q.remaining_pred.saturating_sub(kernel_preds[si][idx]);
                    // BE kernel completed via fusion: credit its solo work.
                    let be_wk = be_heads[be_index]
                        .as_ref()
                        .expect("fusion used this BE head");
                    report.be_work += profiler.measure(be_wk)?;
                    report.be_kernels += 1;
                    be_states[be_index].pop();
                    report.fused_launches += 1;
                    last_be = Some((be_wk.def.name().to_string(), be_wk.def.id().get()));
                    budget -= run.duration.saturating_sub(lc_predicted).as_nanos() as i128;
                    // Online model refresh (>10% error, §VI-C) and pair
                    // blacklisting when fusion lost to sequential (§VIII-I).
                    if entry.lock().expect("entry poisoned").observe_outcome(
                        x_tc,
                        x_cd,
                        run.duration,
                    ) {
                        report.model_refreshes += 1;
                        if tracing {
                            let actual = run.duration.as_nanos() as f64;
                            let rel_error = if actual > 0.0 {
                                (predicted.as_nanos() as f64 - actual).abs() / actual
                            } else {
                                0.0
                            };
                            sink.record(TraceEvent::ModelRefresh {
                                kernel: run.name.clone(),
                                rel_error,
                            });
                        }
                    }
                    if let Some(tl) = report.timeline.as_mut() {
                        tl.advance_to(now.saturating_sub(run.duration));
                        tl.record(&run, "FUSED");
                    }
                }
                Decision::RunBe {
                    be_index,
                    predicted,
                } => {
                    let be_wk = be_heads[be_index].as_ref().expect("BE head exists");
                    let mut run = run_kernel(be_wk)?;
                    launch_seq += 1;
                    let sf = faults.straggler_factor(launch_seq);
                    if sf != 1.0 {
                        fault_event(
                            &mut report,
                            &mut fault_counts,
                            now,
                            "straggler",
                            &run.name,
                            sf,
                        );
                        run = Arc::new(scale_run(&run, sf));
                    }
                    now += run.duration;
                    report.busy += run.duration;
                    if let Some(ws) = windows.as_mut() {
                        let (tc, cd) = run.pipe_utilizations();
                        ws.on_span(
                            now.saturating_sub(run.duration),
                            now,
                            tc,
                            cd,
                            SpanKind::Be,
                            &mut emit_window,
                        );
                    }
                    if tracing {
                        retire(sink.as_ref(), &run, "BE", now, predicted);
                    }
                    report.be_work += run.duration;
                    report.be_kernels += 1;
                    be_states[be_index].pop();
                    last_be = Some((be_wk.def.name().to_string(), be_wk.def.id().get()));
                    if was_idle {
                        // Free-running BE during idle replenishes the budget.
                        budget = budget_cap.min(budget + run.duration.as_nanos() as i128);
                    } else {
                        report.reordered_launches += 1;
                        budget -= run.duration.as_nanos() as i128;
                    }
                    if let Some(g) = &guard {
                        let step = g.observe_launch(be_wk.def.id().get(), predicted, run.duration);
                        guard_note(&mut report, now, step);
                    }
                    if let Some(tl) = report.timeline.as_mut() {
                        tl.advance_to(now.saturating_sub(run.duration));
                        tl.record(&run, "BE");
                    }
                }
                Decision::Idle => {
                    // Jump to the next arrival of any service — or the next
                    // flood burst, which also re-opens the device; genuine
                    // idle replenishes the injection budget.
                    let upcoming = arrival_proc.upcoming();
                    let upcoming = match (upcoming, faults.be_floods.get(next_flood)) {
                        (Some(t), Some(b)) => Some(t.min(b.at)),
                        (None, Some(b)) => Some(b.at),
                        (t, None) => t,
                    };
                    match upcoming {
                        Some(t) => {
                            let target = now.max(t);
                            budget = budget_cap
                                .min(budget + target.saturating_sub(now).as_nanos() as i128);
                            now = target;
                        }
                        None => break,
                    }
                }
            }
        }

        // Per-iteration telemetry: guard ladder level (sticky, so only
        // pushed on change) and fused-plan cache deltas land in the window
        // the iteration ended in.
        if let Some(ws) = windows.as_mut() {
            let level = guard.as_ref().map(|g| g.level());
            if level != last_guard_level {
                last_guard_level = level;
                ws.set_guard(level.map(crate::guard::GuardLevel::name));
            }
            if let Some((lh, lm)) = last_cache {
                let (h, m) = device.fused_cache_stats();
                if (h, m) != (lh, lm) {
                    ws.on_cache(h - lh, m - lm);
                    last_cache = Some((h, m));
                }
            }
        }

        // Retire completed queries.
        while let Some(q) = active.front() {
            if q.pending.is_empty() {
                let latency = now.saturating_sub(q.arrival);
                let violated = latency > config.qos_target;
                if violated && report.violation_log.len() < VIOLATION_LOG_CAP {
                    // Which fault classes fired while the query was in
                    // flight; an outage window straddling the completion
                    // counts even when it started before admission.
                    let mut in_effect: Vec<&'static str> = FAULT_KINDS
                        .iter()
                        .zip(fault_counts.iter().zip(q.faults_at_admission.iter()))
                        .filter(|(_, (now_n, adm_n))| now_n > adm_n)
                        .map(|(k, _)| *k)
                        .collect();
                    if faults.outage_active(now) && !in_effect.contains(&"predictor_outage") {
                        in_effect.push("predictor_outage");
                    }
                    report.violation_log.push(ViolationRecord {
                        at: now,
                        service: report.services[q.service].name.clone(),
                        latency,
                        target: config.qos_target,
                        guard_level: guard.as_ref().map(|g| g.level()),
                        faults: in_effect,
                        be_kernel: last_be.clone(),
                        queue_depth: q.depth_at_admission,
                    });
                }
                {
                    let svc = &mut report.services[q.service];
                    if violated {
                        svc.qos_violations += 1;
                        m_violations.inc();
                        if tracing {
                            sink.record(TraceEvent::QosViolation {
                                at: now,
                                service: svc.name.as_str().into(),
                                latency,
                                target: config.qos_target,
                            });
                        }
                    }
                    svc.latency.observe(latency);
                    svc.latency_histogram.observe(latency.as_micros_f64());
                    m_latency_all.observe(latency.as_micros_f64());
                    if tracing {
                        sink.record(TraceEvent::QueryCompleted {
                            service: svc.name.as_str().into(),
                            arrival: q.arrival,
                            latency,
                            violated,
                        });
                    }
                }
                report.latency.observe(latency);
                if let Some(ws) = windows.as_mut() {
                    ws.on_completion(now, violated, &mut emit_window);
                }
                active.pop_front();
                completed += 1;
                if let Some(g) = &guard {
                    let step = g.observe_query(latency);
                    guard_note(&mut report, now, step);
                }
            } else {
                break;
            }
        }
    }

    if let Some(ws) = windows {
        report.windows = ws.finish(&mut emit_window);
    }
    report.wall = now;
    report.guard_level = guard.as_ref().map(|g| g.level());
    sink.flush();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::GpuSpec;
    use tacker_workloads::parboil::Benchmark;
    use tacker_workloads::Intensity;

    fn tiny_lc() -> LcService {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let mut kernels = Vec::new();
        for _ in 0..3 {
            kernels.push(tacker_workloads::gemm::gemm_workload(
                &gemm,
                tacker_workloads::gemm::GemmShape::new(2048, 1024, 512),
            ));
            kernels.push(tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                4_000_000,
            ));
        }
        LcService::new("tiny", 8, kernels)
    }

    fn tiny_be() -> BeApp {
        BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task())
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::default().with_queries(30).with_seed(42)
    }

    fn device() -> Arc<Device> {
        Arc::new(Device::new(GpuSpec::rtx2080ti()))
    }

    fn base_run(device: &Arc<Device>) -> RunReport {
        ColocationRun::new(device, &config(), &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn bursty_arrivals_keep_rate_but_cluster() {
        let svc = [ServiceLoad {
            lc: tiny_lc(),
            mean_interarrival: SimTime::from_millis(2),
            seed: 7,
        }];
        let cfg = config().with_queries(40);
        let poisson = generate_arrivals(&svc, &cfg, &ArrivalSpec::Poisson).unwrap();
        let bursty = generate_arrivals(&svc, &cfg, &ArrivalSpec::Bursty { burst: 4 }).unwrap();
        assert_eq!(poisson[0].len(), 40);
        assert_eq!(bursty[0].len(), 40);
        // Burst members share the group head's arrival instant.
        assert_eq!(bursty[0][0], bursty[0][3]);
        assert_ne!(poisson[0][0], poisson[0][3]);
        // burst = 1 degenerates to the Poisson stream exactly.
        let one = generate_arrivals(&svc, &cfg, &ArrivalSpec::Bursty { burst: 1 }).unwrap();
        assert_eq!(one, poisson);
    }

    #[test]
    fn replay_streams_are_validated_and_sorted() {
        let svc = [ServiceLoad {
            lc: tiny_lc(),
            mean_interarrival: SimTime::from_millis(2),
            seed: 7,
        }];
        let cfg = config();
        assert!(generate_arrivals(&svc, &cfg, &ArrivalSpec::Replay(vec![])).is_err());
        assert!(generate_arrivals(&svc, &cfg, &ArrivalSpec::Replay(vec![vec![]])).is_err());
        let replay =
            ArrivalSpec::Replay(vec![vec![SimTime::from_millis(5), SimTime::from_millis(1)]]);
        let out = generate_arrivals(&svc, &cfg, &replay).unwrap();
        assert_eq!(
            out[0],
            vec![SimTime::from_millis(1), SimTime::from_millis(5)]
        );
    }

    #[test]
    fn zero_fault_serve_options_are_batch_identical() {
        let device = device();
        let batch = base_run(&device);
        let served = ColocationRun::new(&device, &config(), &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .serve(ServeOptions::default())
            .run()
            .unwrap();
        assert_eq!(batch.query_latencies(), served.query_latencies());
        assert_eq!(batch.be_kernels, served.be_kernels);
        assert_eq!(batch.fused_launches, served.fused_launches);
        assert_eq!(batch.wall, served.wall);
        assert_eq!(served.faults_injected, 0);
        assert_eq!(served.guard_steps, 0);
    }

    #[test]
    fn guard_on_zero_faults_is_batch_identical() {
        let device = device();
        let batch = base_run(&device);
        let guarded = ColocationRun::new(&device, &config(), &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .guarded(GuardConfig::default())
            .run()
            .unwrap();
        assert_eq!(batch.query_latencies(), guarded.query_latencies());
        assert_eq!(batch.be_kernels, guarded.be_kernels);
        assert_eq!(batch.wall, guarded.wall);
        assert_eq!(guarded.guard_steps, 0, "guard fired on a fault-free run");
        assert_eq!(guarded.guard_level, Some(crate::guard::GuardLevel::Fuse));
    }

    #[test]
    fn misprediction_faults_perturb_latencies_and_trip_the_guard() {
        let device = device();
        let batch = base_run(&device);
        let plan = FaultPlan::mispredicting(1.5, 0.5).with_seed(3);
        let faulted = ColocationRun::new(&device, &config(), &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .faults(plan.clone())
            .run()
            .unwrap();
        assert!(faulted.faults_injected > 0, "no faults applied");
        assert!(
            faulted.wall > batch.wall,
            "stretched kernels must stretch the run"
        );
        let guarded = ColocationRun::new(&device, &config(), &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .faults(plan)
            .guarded(GuardConfig::default())
            .run()
            .unwrap();
        assert!(guarded.guard_steps > 0, "guard never reacted");
        assert!(guarded.guard_level > Some(crate::guard::GuardLevel::Fuse));
    }

    #[test]
    fn outage_and_flood_faults_inject_and_complete() {
        let device = device();
        let plan = FaultPlan::none()
            .with_outage(SimTime::ZERO, SimTime::from_millis(5))
            .with_flood(SimTime::from_millis(1), 4);
        let r = ColocationRun::new(&device, &config(), &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .faults(plan)
            .run()
            .unwrap();
        assert_eq!(r.query_count(), 30);
        // Both the outage window and the flood burst fired.
        assert!(r.faults_injected >= 2, "got {}", r.faults_injected);
        assert!(r.be_kernels >= 4, "flood kernels must execute");
    }

    /// One LC-only steady-state run: large gaps so most queries are
    /// alone in flight (the fast path's engagement condition).
    fn steady_run(device: &Arc<Device>, fast: bool) -> RunReport {
        ColocationRun::new(device, &config(), &[tiny_lc()], &[])
            .unwrap()
            .at(SimTime::from_micros(900))
            .guarded(GuardConfig::default())
            .windowed(SimTime::from_millis(1))
            .steady_fast_path(fast)
            .run()
            .unwrap()
    }

    #[test]
    fn fast_path_report_is_bit_identical_to_slow_path() {
        let device = device();
        let fast = steady_run(&device, true);
        device.reset_stats();
        let slow = steady_run(&device, false);
        // Prove the fast run actually replayed from profiles: the slow
        // run probes the device cache for every kernel of every query,
        // the fast run only for warm-up and profile building.
        let (slow_hits, _) = device.cache_stats();
        device.reset_stats();
        let again = steady_run(&device, true);
        let (fast_hits, _) = device.cache_stats();
        assert!(
            fast_hits < slow_hits / 2,
            "fast path did not engage: {fast_hits} vs {slow_hits} cache hits"
        );
        assert_eq!(again.wall, slow.wall);
        assert_eq!(fast.query_latencies(), slow.query_latencies());
        assert_eq!(fast.wall, slow.wall);
        assert_eq!(fast.qos_violations(), slow.qos_violations());
        assert_eq!(fast.guard_steps, slow.guard_steps);
        assert_eq!(fast.guard_level, slow.guard_level);
        assert_eq!(fast.windows, slow.windows, "window series diverged");
        assert_eq!(fast.violation_log.len(), slow.violation_log.len());
    }

    #[test]
    fn fast_path_timeline_matches_slow_path() {
        let device = device();
        let cfg = config().with_queries(12).with_timeline();
        let mut reports = [true, false].map(|fast| {
            ColocationRun::new(&device, &cfg, &[tiny_lc()], &[])
                .unwrap()
                .at(SimTime::from_micros(900))
                .steady_fast_path(fast)
                .run()
                .unwrap()
        });
        let slow = reports[1].timeline.take().unwrap();
        let fast = reports[0].timeline.take().unwrap();
        assert_eq!(fast.entries(), slow.entries());
        assert_eq!(fast.now(), slow.now());
    }

    #[test]
    fn fast_path_is_inert_under_tracing_and_faults() {
        // Tracing and faults each force the slow path; the reports must
        // still be produced (and for faults, still perturbed).
        let device = device();
        let collector = Arc::new(tacker_trace::RingSink::unbounded());
        let traced = ColocationRun::new(&device, &config(), &[tiny_lc()], &[])
            .unwrap()
            .at(SimTime::from_micros(900))
            .traced(collector.clone())
            .run()
            .unwrap();
        assert_eq!(traced.query_count(), 30);
        assert!(!collector.events().is_empty(), "tracing must stay live");
        let faulted = ColocationRun::new(&device, &config(), &[tiny_lc()], &[])
            .unwrap()
            .at(SimTime::from_micros(900))
            .faults(FaultPlan::mispredicting(1.5, 0.5).with_seed(3))
            .run()
            .unwrap();
        assert!(faulted.faults_injected > 0);
    }

    #[test]
    fn explicit_interarrival_needs_single_service() {
        let device = device();
        let two = [tiny_lc(), tiny_lc()];
        let err = ColocationRun::new(&device, &config(), &two, &[])
            .unwrap()
            .at(SimTime::from_millis(1))
            .run();
        assert!(matches!(err, Err(TackerError::Config { .. })));
    }
}
