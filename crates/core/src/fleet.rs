//! Fleet-scale serving: §IV's cluster deployment taken online.
//!
//! The paper's cluster story ([`crate::cluster`]) prepares and
//! distributes fused kernels; this module *serves traffic* across that
//! fleet. A [`FleetRun`] stands up N [`FleetNode`]s with heterogeneous
//! GPU profiles (the paper evaluates RTX 2080 Ti and V100), generates
//! one fleet-level set of LC arrival streams, and routes every query to
//! a device through a pluggable [`DispatchPolicy`]:
//!
//! * **round-robin** — queries rotate over devices in arrival order;
//! * **least-outstanding** — fewest model-predicted queries still in
//!   flight on the device;
//! * **QoS-headroom** — the device whose predicted completion leaves the
//!   most Equation 8/9 slack against the query's deadline;
//! * **cache-affinity** — prefer a device whose fused-plan/execution
//!   cache is already warm for the query's plan-sequence fingerprint
//!   (ties broken by least-outstanding).
//!
//! Routing runs serially over the merged arrival stream against a
//! deterministic analytical model (per-device FIFO of predicted
//! completions, per-`(device, service)` zero-fault query service times
//! measured on scratch devices), so the assignment is a pure function of
//! the workload — independent of host parallelism. Execution then fans
//! out per device over the persistent `tacker-par` pool: each node
//! replays exactly its routed arrivals ([`ArrivalSpec::Replay`]) through
//! the one serving engine behind [`crate::serve::ColocationRun`], and
//! the per-device [`RunReport`]s merge in node order into a
//! [`FleetReport`]. A fleet of one node with a zero [`DispatchModel`] is
//! bit-identical to the single-device serving runtime: every policy
//! routes every query to the only device, and replaying the generated
//! Poisson streams reproduces the single-device run exactly.
//!
//! The [`DispatchModel`] adds a constant dispatcher hop to every query:
//! arrivals land on the device `latency` later and the device-side QoS
//! budget shrinks by the same amount, so a fleet QoS violation is exactly
//! "dispatch latency + device latency exceeds the original target".

use std::collections::HashMap;
use std::sync::Arc;

use tacker_kernel::{SimTime, StableHasher};
use tacker_sim::core::{Event, EventHandler, Schedule, Simulation, SimulationContext};
use tacker_sim::queue::{HeapQueue, SimQueue};
use tacker_sim::{Device, GpuSpec};
use tacker_trace::{NoopSink, TraceEvent, TraceSink};
use tacker_workloads::{BeApp, LcService};

use crate::config::ExperimentConfig;
use crate::error::TackerError;
use crate::guard::GuardConfig;
use crate::manager::Policy;
use crate::metrics::LatencyStats;
use crate::report::RunReport;
use crate::serve::{generate_arrivals, run_engine, ArrivalSpec, ServeOptions, ServiceLoad};
use crate::server::calibrate_peak_interarrival;

/// How the global dispatcher picks a device for each LC query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Rotate over devices in merged arrival order.
    RoundRobin,
    /// Fewest model-predicted queries still in flight; ties go to the
    /// lowest node index.
    LeastOutstanding,
    /// Most Equation 8/9 slack: route to the device whose predicted
    /// completion (queue drain + this query's service time) leaves the
    /// largest margin against the query's QoS deadline.
    QosHeadroom,
    /// Prefer devices whose execution/fused-plan cache is warm for the
    /// query's plan-sequence fingerprint; among warm (or, failing any,
    /// all) devices pick the least outstanding.
    CacheAffinity,
}

impl DispatchPolicy {
    /// Every policy, in comparison-table order.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastOutstanding,
        DispatchPolicy::QosHeadroom,
        DispatchPolicy::CacheAffinity,
    ];

    /// Stable kebab-case name (CLI/bench spelling).
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
            DispatchPolicy::QosHeadroom => "qos-headroom",
            DispatchPolicy::CacheAffinity => "cache-affinity",
        }
    }

    /// Parses the kebab-case name.
    ///
    /// # Errors
    ///
    /// Returns [`TackerError::Config`] for unknown names.
    pub fn parse(name: &str) -> Result<DispatchPolicy, TackerError> {
        DispatchPolicy::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| TackerError::Config {
                reason: format!(
                    "unknown dispatch policy `{name}` (one of: {})",
                    DispatchPolicy::ALL.map(DispatchPolicy::name).join(", ")
                ),
            })
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The dispatch-latency model: a constant per-query hop between the
/// global dispatcher and the chosen device. Arrivals land on the device
/// `latency` later, the device-side QoS budget shrinks by `latency`, and
/// every reported end-to-end latency includes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchModel {
    /// Per-query dispatch latency.
    pub latency: SimTime,
}

impl DispatchModel {
    /// No dispatch cost — the identity-gate model.
    pub fn zero() -> DispatchModel {
        DispatchModel {
            latency: SimTime::ZERO,
        }
    }

    /// A constant per-query dispatch latency.
    pub fn constant(latency: SimTime) -> DispatchModel {
        DispatchModel { latency }
    }

    /// Sets the per-query dispatch latency.
    #[must_use]
    pub fn with_latency(mut self, latency: SimTime) -> Self {
        self.latency = latency;
        self
    }
}

/// One GPU of the serving fleet: an id, a device profile, and the BE
/// applications resident on it (empty for a dedicated LC node).
#[derive(Debug, Clone)]
pub struct FleetNode {
    /// Node identifier (also the `device` field of dispatch trace rows).
    pub id: String,
    /// The GPU profile simulated for this node.
    pub spec: GpuSpec,
    /// BE applications co-located on this node.
    pub be: Vec<BeApp>,
}

impl FleetNode {
    /// A node with no resident BE work.
    pub fn new(id: impl Into<String>, spec: GpuSpec) -> FleetNode {
        FleetNode {
            id: id.into(),
            spec,
            be: Vec::new(),
        }
    }

    /// Adds a resident BE application.
    #[must_use]
    pub fn with_be(mut self, app: BeApp) -> FleetNode {
        self.be.push(app);
        self
    }
}

/// Builds a default heterogeneous fleet of `n` nodes alternating the
/// paper's two evaluation GPUs: even indices are RTX 2080 Ti profiles,
/// odd indices are V100 profiles. Node ids are `gpu-<i>`.
pub fn heterogeneous_fleet(n: usize) -> Vec<FleetNode> {
    (0..n)
        .map(|i| {
            let spec = if i % 2 == 0 {
                GpuSpec::rtx2080ti()
            } else {
                GpuSpec::v100()
            };
            FleetNode::new(format!("gpu-{i}"), spec)
        })
        .collect()
}

/// Per-device slice of a [`FleetReport`].
#[derive(Debug)]
pub struct FleetDeviceReport {
    /// Node id.
    pub id: String,
    /// GPU profile name.
    pub gpu: String,
    /// Queries routed to this device.
    pub queries: usize,
    /// Peak dispatcher-model outstanding queries observed at dispatch.
    pub max_outstanding: u64,
    /// Mean dispatcher-model outstanding queries over this device's
    /// dispatch events (0 when nothing was routed here).
    pub mean_outstanding: f64,
    /// The device's serving report (device-relative latencies; `None`
    /// when no query was routed to this device, in which case the node
    /// never runs). The fleet accessors fold the dispatch latency back
    /// in.
    pub report: Option<RunReport>,
}

impl FleetDeviceReport {
    /// Fraction of this device's wall time spent executing kernels.
    pub fn utilization(&self) -> f64 {
        self.report.as_ref().map_or(0.0, RunReport::utilization)
    }

    /// Simulated warm-query throughput: queries completed per second of
    /// this device's simulated wall time.
    pub fn sim_queries_per_sec(&self) -> f64 {
        match &self.report {
            Some(r) if r.wall > SimTime::ZERO => {
                r.query_count() as f64 / (r.wall.as_nanos() as f64 / 1e9)
            }
            _ => 0.0,
        }
    }
}

/// Per-service fleet aggregate: latency statistics and violations merged
/// over every device the service's queries were routed to.
#[derive(Debug)]
pub struct FleetServiceReport {
    /// Service name.
    pub name: String,
    /// Completed queries across the fleet.
    pub queries: usize,
    /// QoS violations across the fleet (against the original target —
    /// device-side accounting already charges the dispatch latency).
    pub qos_violations: usize,
    /// Merged device-relative latency statistics; add the fleet's
    /// dispatch latency for end-to-end numbers.
    pub latency: LatencyStats,
}

/// Outcome of one fleet serving run: the deterministic merge of every
/// per-device [`RunReport`] plus the dispatcher's own accounting.
#[derive(Debug)]
pub struct FleetReport {
    /// The dispatch policy used.
    pub dispatch_policy: DispatchPolicy,
    /// The on-device scheduling policy.
    pub device_policy: Policy,
    /// The original (fleet-level) QoS target.
    pub qos_target: SimTime,
    /// The constant per-query dispatch latency applied.
    pub dispatch_latency: SimTime,
    /// Per-device results, in node order.
    pub devices: Vec<FleetDeviceReport>,
    /// Per-service fleet aggregates, in service order.
    pub services: Vec<FleetServiceReport>,
    /// Merged device-relative latency statistics over every query.
    pub latency: LatencyStats,
    /// Fleet makespan: the largest per-device simulated wall time.
    pub wall: SimTime,
    /// Peak dispatcher-model outstanding over all dispatch events.
    pub outstanding_max: u64,
    /// Mean dispatcher-model outstanding over all dispatch events.
    pub outstanding_mean: f64,
}

impl FleetReport {
    /// Total completed queries across the fleet.
    pub fn query_count(&self) -> usize {
        self.services.iter().map(|s| s.queries).sum()
    }

    /// Total QoS violations across the fleet.
    pub fn qos_violations(&self) -> usize {
        self.services.iter().map(|s| s.qos_violations).sum()
    }

    /// QoS violation rate over all completed queries (0 when none ran).
    pub fn violation_rate(&self) -> f64 {
        let n = self.query_count();
        if n == 0 {
            0.0
        } else {
            self.qos_violations() as f64 / n as f64
        }
    }

    /// Mean end-to-end query latency, dispatch hop included (`None` when
    /// no query completed).
    pub fn mean_latency(&self) -> Option<SimTime> {
        self.latency.mean().map(|t| t + self.dispatch_latency)
    }

    /// 99th-percentile end-to-end query latency, dispatch hop included.
    /// The hop is a constant shift, so percentiles translate exactly.
    pub fn p99_latency(&self) -> Option<SimTime> {
        self.latency
            .percentile(99.0)
            .map(|t| t + self.dispatch_latency)
    }

    /// Load-balance skew: the peak over the mean dispatcher-model
    /// outstanding (1.0 = perfectly level; larger = burstier imbalance).
    pub fn outstanding_skew(&self) -> f64 {
        if self.outstanding_mean > 0.0 {
            self.outstanding_max as f64 / self.outstanding_mean
        } else {
            1.0
        }
    }

    /// Aggregate simulated warm-query throughput: total queries per
    /// second of fleet makespan. Devices run concurrently, so this is
    /// the number a load balancer in front of the fleet would observe.
    pub fn sim_queries_per_sec(&self) -> f64 {
        if self.wall > SimTime::ZERO {
            self.query_count() as f64 / (self.wall.as_nanos() as f64 / 1e9)
        } else {
            0.0
        }
    }
}

/// One dispatcher routing decision (kept for report assembly).
struct Assignment {
    device: usize,
    outstanding: u64,
}

/// Builder for fleet serving runs, mirroring
/// [`crate::serve::ColocationRun`] at cluster scale.
///
/// ```no_run
/// use tacker::fleet::{heterogeneous_fleet, DispatchPolicy, FleetRun};
/// use tacker::prelude::*;
///
/// let device = std::sync::Arc::new(tacker_sim::Device::new(tacker_sim::GpuSpec::rtx2080ti()));
/// let lc = tacker_workloads::lc_service("Resnet50", &device).unwrap();
/// let config = ExperimentConfig::default();
/// let report = FleetRun::new(heterogeneous_fleet(4), &config, &[lc])
///     .unwrap()
///     .dispatch_policy(DispatchPolicy::QosHeadroom)
///     .run()
///     .unwrap();
/// println!("violation rate {:.4}", report.violation_rate());
/// ```
pub struct FleetRun {
    nodes: Vec<FleetNode>,
    config: ExperimentConfig,
    lcs: Vec<LcService>,
    device_policy: Policy,
    dispatch_policy: DispatchPolicy,
    dispatch: DispatchModel,
    arrivals: ArrivalSpec,
    mean_interarrival: Option<SimTime>,
    loads: Option<Vec<ServiceLoad>>,
    guard: Option<GuardConfig>,
    window: Option<SimTime>,
    fast_path: bool,
    sink: Arc<dyn TraceSink>,
}

impl FleetRun {
    /// Starts a fleet run of `lcs` over `nodes` with round-robin
    /// dispatch, zero dispatch latency, `Policy::Tacker` on-device, and
    /// calibrated per-service load.
    ///
    /// # Errors
    ///
    /// Returns [`TackerError::Config`] when the fleet or service list is
    /// empty, or a service has no kernels.
    pub fn new(
        nodes: Vec<FleetNode>,
        config: &ExperimentConfig,
        lcs: &[LcService],
    ) -> Result<FleetRun, TackerError> {
        if nodes.is_empty() {
            return Err(TackerError::Config {
                reason: "fleet needs at least one node".to_string(),
            });
        }
        if lcs.is_empty() || lcs.iter().any(|s| s.query_kernels().is_empty()) {
            return Err(TackerError::Config {
                reason: "need at least one LC service, each with kernels".to_string(),
            });
        }
        Ok(FleetRun {
            nodes,
            config: config.clone(),
            lcs: lcs.to_vec(),
            device_policy: Policy::Tacker,
            dispatch_policy: DispatchPolicy::RoundRobin,
            dispatch: DispatchModel::zero(),
            arrivals: ArrivalSpec::Poisson,
            mean_interarrival: None,
            loads: None,
            guard: None,
            window: None,
            fast_path: true,
            sink: Arc::new(NoopSink),
        })
    }

    /// Selects the on-device scheduling policy (default
    /// [`Policy::Tacker`]).
    #[must_use]
    pub fn device_policy(mut self, policy: Policy) -> Self {
        self.device_policy = policy;
        self
    }

    /// Selects the dispatch policy (default
    /// [`DispatchPolicy::RoundRobin`]).
    #[must_use]
    pub fn dispatch_policy(mut self, policy: DispatchPolicy) -> Self {
        self.dispatch_policy = policy;
        self
    }

    /// Sets the dispatch-latency model (default [`DispatchModel::zero`]).
    #[must_use]
    pub fn dispatch_model(mut self, model: DispatchModel) -> Self {
        self.dispatch = model;
        self
    }

    /// Selects the fleet-level arrival process (default Poisson).
    #[must_use]
    pub fn arrivals(mut self, spec: ArrivalSpec) -> Self {
        self.arrivals = spec;
        self
    }

    /// Uses an explicit mean query inter-arrival time (single service
    /// only), skipping peak-load calibration.
    #[must_use]
    pub fn at(mut self, mean_interarrival: SimTime) -> Self {
        self.mean_interarrival = Some(mean_interarrival);
        self
    }

    /// Uses explicit per-service loads, overriding the services given to
    /// `new`.
    #[must_use]
    pub fn with_loads(mut self, loads: &[ServiceLoad]) -> Self {
        self.loads = Some(loads.to_vec());
        self
    }

    /// Arms the adaptive QoS guard on every device.
    #[must_use]
    pub fn guarded(mut self, config: GuardConfig) -> Self {
        self.guard = Some(config);
        self
    }

    /// Enables per-device windowed telemetry with the given width.
    #[must_use]
    pub fn windowed(mut self, width: SimTime) -> Self {
        self.window = Some(width);
        self
    }

    /// Enables or disables the per-device steady-state fast path
    /// (default on).
    #[must_use]
    pub fn steady_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Streams one [`TraceEvent::QueryDispatched`] per routing decision
    /// to `sink`. Fleet tracing covers the dispatcher only: per-device
    /// engines run untraced so their event streams cannot interleave
    /// non-deterministically across pool workers.
    #[must_use]
    pub fn traced(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Resolves the per-service loads exactly as
    /// [`crate::serve::ColocationRun`] does, calibrating against the
    /// first node's device profile (calibration is pure per profile).
    fn resolve_services(&self) -> Result<Vec<ServiceLoad>, TackerError> {
        if let Some(loads) = &self.loads {
            return Ok(loads.clone());
        }
        if let Some(mean_interarrival) = self.mean_interarrival {
            if self.lcs.len() != 1 {
                return Err(TackerError::Config {
                    reason: "explicit inter-arrival needs exactly one service; use with_loads"
                        .to_string(),
                });
            }
            return Ok(vec![ServiceLoad {
                lc: self.lcs[0].clone(),
                mean_interarrival,
                seed: self.config.seed,
            }]);
        }
        let share = self.lcs.len() as f64 / self.config.load_factor.max(1e-6);
        let device = Arc::new(Device::new(self.nodes[0].spec.clone()));
        let config = self.config.clone();
        let peaks = tacker_par::try_pool_map(self.config.jobs, self.lcs.clone(), move |_, lc| {
            calibrate_peak_interarrival(&device, lc, &config)
        })?;
        Ok(self
            .lcs
            .iter()
            .zip(peaks)
            .enumerate()
            .map(|(i, (lc, peak))| ServiceLoad {
                lc: lc.clone(),
                mean_interarrival: peak.mul_f64(share),
                seed: self.config.seed.wrapping_add(i as u64),
            })
            .collect())
    }

    /// Executes the run under the configured dispatch policy.
    ///
    /// # Errors
    ///
    /// Propagates simulation/fusion errors and returns
    /// [`TackerError::Config`] for unusable setups (zero queries, or a
    /// dispatch latency at or above the QoS target).
    pub fn run(&self) -> Result<FleetReport, TackerError> {
        self.run_with(self.dispatch_policy)
    }

    /// Runs once per given dispatch policy over the *same* workload
    /// (identical fleet-level arrival streams), returning the reports in
    /// policy order — the per-policy comparison table.
    ///
    /// # Errors
    ///
    /// As [`FleetRun::run`].
    pub fn run_policies(
        &self,
        policies: &[DispatchPolicy],
    ) -> Result<Vec<(DispatchPolicy, FleetReport)>, TackerError> {
        policies
            .iter()
            .map(|&p| Ok((p, self.run_with(p)?)))
            .collect()
    }

    fn run_with(&self, dispatch_policy: DispatchPolicy) -> Result<FleetReport, TackerError> {
        if self.dispatch.latency >= self.config.qos_target {
            return Err(TackerError::Config {
                reason: format!(
                    "dispatch latency {} consumes the whole QoS target {}",
                    self.dispatch.latency, self.config.qos_target
                ),
            });
        }
        let services = self.resolve_services()?;
        let streams = generate_arrivals(&services, &self.config, &self.arrivals)?;
        if streams.iter().any(Vec::is_empty) {
            return Err(TackerError::Config {
                reason: "fleet serving needs at least one query per service".to_string(),
            });
        }

        // Per-(device, service) zero-fault query service times, measured
        // on one scratch device per distinct GPU profile so the real
        // fleet devices start cold (cache-affinity routing then mirrors
        // actual first-touch warmth). Scratch measurements are memoized
        // simulations — pure and deterministic per profile.
        let mut scratch: HashMap<String, Arc<Device>> = HashMap::new();
        let mut service_time = vec![vec![SimTime::ZERO; services.len()]; self.nodes.len()];
        for (d, node) in self.nodes.iter().enumerate() {
            let dev = scratch
                .entry(node.spec.name.clone())
                .or_insert_with(|| Arc::new(Device::new(node.spec.clone())));
            for (s, svc) in services.iter().enumerate() {
                let mut total = SimTime::ZERO;
                for k in svc.lc.query_kernels() {
                    total += dev.run_launch(&k.launch())?.duration;
                }
                service_time[d][s] = total;
            }
        }
        // Plan-sequence fingerprints (device-independent) for affinity.
        let service_fp: Vec<u64> = services
            .iter()
            .map(|svc| {
                let mut hasher = StableHasher::new();
                for k in svc.lc.query_kernels() {
                    hasher.write_u64(k.launch().fingerprint());
                }
                hasher.finish()
            })
            .collect();

        let merged = merged_arrivals(&streams);
        let assignments = self.route(
            dispatch_policy,
            &services,
            &merged,
            &service_time,
            &service_fp,
        );

        // Per-device replay streams: routed arrivals shifted by the
        // dispatch hop. Devices keep only the services actually routed to
        // them (the replay spec rejects empty streams); `svc_map` keeps
        // the fleet service index for the merge.
        let n = self.nodes.len();
        let mut routed: Vec<Vec<Vec<SimTime>>> = vec![vec![Vec::new(); services.len()]; n];
        for ((at, s, _), a) in merged.iter().zip(&assignments) {
            routed[a.device][*s].push(*at + self.dispatch.latency);
        }
        let mut device_config = self.config.clone();
        device_config.qos_target = self.config.qos_target.saturating_sub(self.dispatch.latency);

        struct DeviceTask {
            services: Vec<ServiceLoad>,
            streams: Vec<Vec<SimTime>>,
            be: Vec<BeApp>,
            device: Arc<Device>,
        }
        let mut tasks: Vec<Option<DeviceTask>> = Vec::with_capacity(n);
        for (d, node) in self.nodes.iter().enumerate() {
            let mut dev_services = Vec::new();
            let mut dev_streams = Vec::new();
            for (s, svc) in services.iter().enumerate() {
                if routed[d][s].is_empty() {
                    continue;
                }
                dev_services.push(ServiceLoad {
                    lc: svc.lc.clone(),
                    mean_interarrival: svc.mean_interarrival,
                    // Replay never draws from the seed; derive it from the
                    // (node, service) coordinates anyway so any future
                    // stochastic use stays decorrelated across devices.
                    seed: tacker_par::derive_seed(self.config.seed, &[&node.id, svc.lc.name()]),
                });
                dev_streams.push(std::mem::take(&mut routed[d][s]));
            }
            if dev_services.is_empty() {
                tasks.push(None);
                continue;
            }
            tasks.push(Some(DeviceTask {
                services: dev_services,
                streams: dev_streams,
                be: node.be.clone(),
                device: Arc::new(Device::new(node.spec.clone())),
            }));
        }

        let policy = self.device_policy;
        let opts_template = ServeOptions {
            arrivals: ArrivalSpec::Poisson, // replaced per device below
            faults: crate::fault::FaultPlan::none(),
            guard: self.guard.clone(),
            telemetry: crate::serve::TelemetryOptions {
                exact_limit: crate::metrics::DEFAULT_EXACT_LIMIT,
                window: self.window,
            },
            fast_path: self.fast_path,
        };
        let reports: Vec<Option<Result<RunReport, TackerError>>> = tacker_par::pool_map(
            self.config.jobs,
            tasks,
            move |_, task: &Option<DeviceTask>| {
                let task = task.as_ref()?;
                let opts = ServeOptions {
                    arrivals: ArrivalSpec::Replay(task.streams.clone()),
                    ..opts_template.clone()
                };
                Some(run_engine(
                    &task.device,
                    &task.services,
                    &task.be,
                    policy,
                    &device_config,
                    Arc::new(NoopSink),
                    &opts,
                ))
            },
        );

        self.merge(dispatch_policy, &services, &merged, &assignments, reports)
    }

    /// The deterministic router: schedules one event per merged fleet
    /// arrival (payload = merged index) on a `tacker_sim::core` kernel
    /// and lets the [`DispatcherComponent`] assign each query a device
    /// under `policy`. The merged stream is pre-sorted by
    /// `(arrival, service, query)`, so the kernel's `(time, seq)`
    /// dispatch order is exactly the historical serial walk order.
    fn route(
        &self,
        policy: DispatchPolicy,
        services: &[ServiceLoad],
        merged: &[(SimTime, usize, usize)],
        service_time: &[Vec<SimTime>],
        service_fp: &[u64],
    ) -> Vec<Assignment> {
        let n = self.nodes.len();
        let mut dispatcher = DispatcherComponent {
            fleet: self,
            policy,
            services,
            merged,
            service_time,
            service_fp,
            tracing: self.sink.enabled(),
            free_at: vec![SimTime::ZERO; n],
            in_flight: vec![Vec::new(); n],
            warm: vec![Default::default(); n],
            assignments: Vec::with_capacity(merged.len()),
        };
        let mut sim = Simulation::new(HeapQueue::new());
        for (i, &(at, _, _)) in merged.iter().enumerate() {
            sim.schedule(at.as_nanos() as f64, i as u32);
        }
        sim.run(&mut dispatcher);
        if dispatcher.tracing {
            self.sink.flush();
        }
        dispatcher.assignments
    }

    /// Deterministic merge of per-device reports (node order) into the
    /// fleet report.
    fn merge(
        &self,
        dispatch_policy: DispatchPolicy,
        services: &[ServiceLoad],
        merged: &[(SimTime, usize, usize)],
        assignments: &[Assignment],
        reports: Vec<Option<Result<RunReport, TackerError>>>,
    ) -> Result<FleetReport, TackerError> {
        let n = self.nodes.len();
        // Recompute each device's routed-service mapping from the
        // assignment list (cheap, avoids threading svc_map through the
        // pool closure's return type).
        let mut routed_counts = vec![vec![0usize; services.len()]; n];
        let mut dev_outstanding: Vec<(u64, u64, u64)> = vec![(0, 0, 0); n]; // (sum, count, max)
        for ((_, s, _), a) in merged.iter().zip(assignments) {
            routed_counts[a.device][*s] += 1;
            let e = &mut dev_outstanding[a.device];
            e.0 += a.outstanding;
            e.1 += 1;
            e.2 = e.2.max(a.outstanding);
        }
        let mut fleet_services: Vec<FleetServiceReport> = services
            .iter()
            .map(|svc| FleetServiceReport {
                name: svc.lc.name().to_string(),
                queries: 0,
                qos_violations: 0,
                latency: LatencyStats::with_limit(crate::metrics::DEFAULT_EXACT_LIMIT),
            })
            .collect();
        let mut fleet_latency = LatencyStats::with_limit(crate::metrics::DEFAULT_EXACT_LIMIT);
        let mut devices = Vec::with_capacity(n);
        let mut wall = SimTime::ZERO;
        for (d, (node, slot)) in self.nodes.iter().zip(reports).enumerate() {
            let report = match slot {
                Some(r) => Some(r?),
                None => None,
            };
            if let Some(r) = &report {
                wall = wall.max(r.wall);
                fleet_latency.merge(&r.latency);
                // The device kept only routed services, in fleet order.
                let svc_map: Vec<usize> = (0..services.len())
                    .filter(|&s| routed_counts[d][s] > 0)
                    .collect();
                debug_assert_eq!(svc_map.len(), r.per_service().len());
                for (dev_s, &s) in svc_map.iter().enumerate() {
                    let from = &r.per_service()[dev_s];
                    let to = &mut fleet_services[s];
                    to.queries += from.query_count();
                    to.qos_violations += from.qos_violations;
                    to.latency.merge(&from.latency);
                }
            }
            let (sum, count, max) = dev_outstanding[d];
            devices.push(FleetDeviceReport {
                id: node.id.clone(),
                gpu: node.spec.name.clone(),
                queries: count as usize,
                max_outstanding: max,
                mean_outstanding: if count > 0 {
                    sum as f64 / count as f64
                } else {
                    0.0
                },
                report,
            });
        }
        let total_events: u64 = dev_outstanding.iter().map(|e| e.1).sum();
        let total_sum: u64 = dev_outstanding.iter().map(|e| e.0).sum();
        let outstanding_max = dev_outstanding.iter().map(|e| e.2).max().unwrap_or(0);
        Ok(FleetReport {
            dispatch_policy,
            device_policy: self.device_policy,
            qos_target: self.config.qos_target,
            dispatch_latency: self.dispatch.latency,
            devices,
            services: fleet_services,
            latency: fleet_latency,
            wall,
            outstanding_max,
            outstanding_mean: if total_events > 0 {
                total_sum as f64 / total_events as f64
            } else {
                0.0
            },
        })
    }
}

/// The fleet dispatcher as a component on the `tacker_sim::core`
/// kernel: each event is one query arrival (payload = index into the
/// merged fleet stream), and the handler assigns it a device under the
/// dispatch policy, maintaining the per-device model state — predicted
/// free time, in-flight completions, warm plan fingerprints.
struct DispatcherComponent<'a> {
    fleet: &'a FleetRun,
    policy: DispatchPolicy,
    services: &'a [ServiceLoad],
    merged: &'a [(SimTime, usize, usize)],
    /// Predicted whole-query service time per `(device, service)`.
    service_time: &'a [Vec<SimTime>],
    /// Plan-fingerprint per service (cache-affinity key).
    service_fp: &'a [u64],
    tracing: bool,
    // Model state per device: last predicted completion (single-FIFO
    // free time), the predicted completion instants still in flight,
    // and the warm plan fingerprints.
    free_at: Vec<SimTime>,
    in_flight: Vec<Vec<SimTime>>,
    warm: Vec<std::collections::HashSet<u64>>,
    assignments: Vec<Assignment>,
}

impl<'a, Q: SimQueue> EventHandler<Q> for DispatcherComponent<'a> {
    fn on_event(&mut self, event: Event, _ctx: &mut SimulationContext<'_, Q>) {
        let n = self.fleet.nodes.len();
        let i = event.payload as usize;
        let (at, s, _) = self.merged[i];
        let land = at + self.fleet.dispatch.latency;
        for fl in &mut self.in_flight {
            fl.retain(|&f| f > land);
        }
        let in_flight = &self.in_flight;
        let outstanding = |d: usize| in_flight[d].len();
        let least = |candidates: &mut dyn Iterator<Item = usize>| -> usize {
            candidates
                .min_by_key(|&d| (outstanding(d), d))
                .expect("fleet is non-empty")
        };
        let d = match self.policy {
            DispatchPolicy::RoundRobin => i % n,
            DispatchPolicy::LeastOutstanding => least(&mut (0..n)),
            DispatchPolicy::QosHeadroom => {
                // Equation 8/9 slack at the dispatcher: deadline minus
                // predicted completion behind the device's queue.
                (0..n)
                    .max_by_key(|&d| {
                        let start = land.max(self.free_at[d]);
                        let finish = start + self.service_time[d][s];
                        let deadline = at + self.fleet.config.qos_target;
                        // Negative slack sorts below zero slack.
                        (
                            deadline.as_nanos() as i128 - finish.as_nanos() as i128,
                            usize::MAX - d,
                        )
                    })
                    .expect("fleet is non-empty")
            }
            DispatchPolicy::CacheAffinity => {
                let warm = &self.warm;
                let fp = self.service_fp[s];
                let mut warm_devices = (0..n).filter(|&d| warm[d].contains(&fp));
                match warm_devices.next() {
                    Some(first) => least(&mut std::iter::once(first).chain(warm_devices)),
                    None => least(&mut (0..n)),
                }
            }
        };
        let start = land.max(self.free_at[d]);
        let finish = start + self.service_time[d][s];
        self.free_at[d] = finish;
        self.in_flight[d].push(finish);
        self.warm[d].insert(self.service_fp[s]);
        let outstanding = self.in_flight[d].len() as u64;
        if self.tracing {
            self.fleet.sink.record(TraceEvent::QueryDispatched {
                at,
                service: self.services[s].lc.name().into(),
                device: self.fleet.nodes[d].id.as_str().into(),
                latency: self.fleet.dispatch.latency,
                outstanding,
            });
        }
        self.assignments.push(Assignment {
            device: d,
            outstanding,
        });
    }
}

/// Flattens per-service arrival streams into one merged fleet stream
/// ordered by `(arrival, service index, query index)` — the dispatcher's
/// deterministic walk order.
fn merged_arrivals(streams: &[Vec<SimTime>]) -> Vec<(SimTime, usize, usize)> {
    let mut merged: Vec<(SimTime, usize, usize)> = streams
        .iter()
        .enumerate()
        .flat_map(|(s, arrivals)| arrivals.iter().enumerate().map(move |(q, &at)| (at, s, q)))
        .collect();
    merged.sort();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ColocationRun;
    use tacker_trace::RingSink;
    use tacker_workloads::parboil::Benchmark;
    use tacker_workloads::Intensity;

    fn tiny_lc() -> LcService {
        let gemm = tacker_workloads::dnn::compile::shared_gemm();
        let mut kernels = Vec::new();
        for _ in 0..3 {
            kernels.push(tacker_workloads::gemm::gemm_workload(
                &gemm,
                tacker_workloads::gemm::GemmShape::new(2048, 1024, 512),
            ));
            kernels.push(tacker_workloads::dnn::elementwise::elementwise_workload(
                &tacker_workloads::dnn::elementwise::relu(),
                4_000_000,
            ));
        }
        LcService::new("tiny", 8, kernels)
    }

    fn tiny_be() -> BeApp {
        BeApp::new("cutcp", Intensity::Compute, Benchmark::Cutcp.task())
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::default().with_queries(24).with_seed(42)
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in DispatchPolicy::ALL {
            assert_eq!(DispatchPolicy::parse(p.name()).unwrap(), p);
        }
        assert!(DispatchPolicy::parse("stochastic").is_err());
    }

    #[test]
    fn heterogeneous_fleet_alternates_specs() {
        let nodes = heterogeneous_fleet(3);
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].spec.name, "RTX 2080Ti");
        assert_eq!(nodes[1].spec.name, "V100");
        assert_eq!(nodes[2].spec.name, "RTX 2080Ti");
        assert_eq!(nodes[2].id, "gpu-2");
    }

    #[test]
    fn fleet_of_one_is_bit_identical_to_single_device() {
        let cfg = config();
        let device = Arc::new(Device::new(GpuSpec::rtx2080ti()));
        let solo = ColocationRun::new(&device, &cfg, &[tiny_lc()], &[tiny_be()])
            .unwrap()
            .run()
            .unwrap();
        for policy in DispatchPolicy::ALL {
            let nodes = vec![FleetNode::new("gpu-0", GpuSpec::rtx2080ti()).with_be(tiny_be())];
            let fleet = FleetRun::new(nodes, &cfg, &[tiny_lc()])
                .unwrap()
                .dispatch_policy(policy)
                .run()
                .unwrap();
            let dev = fleet.devices[0].report.as_ref().unwrap();
            assert_eq!(dev.query_latencies(), solo.query_latencies());
            assert_eq!(dev.qos_violations(), solo.qos_violations());
            assert_eq!(dev.wall, solo.wall);
            assert_eq!(dev.busy, solo.busy);
            assert_eq!(dev.fused_launches, solo.fused_launches);
            assert_eq!(dev.be_work, solo.be_work);
            assert_eq!(fleet.query_count(), solo.query_count());
            assert_eq!(fleet.mean_latency(), solo.mean_latency());
        }
    }

    #[test]
    fn round_robin_splits_queries_evenly() {
        let report = FleetRun::new(heterogeneous_fleet(2), &config(), &[tiny_lc()])
            .unwrap()
            .run()
            .unwrap();
        let a = report.devices[0].queries;
        let b = report.devices[1].queries;
        assert_eq!(a + b, 24);
        assert_eq!(a, 12);
        assert_eq!(b, 12);
        assert_eq!(report.query_count(), 24);
        // Both device reports exist and the fleet wall is their max.
        let walls: Vec<SimTime> = report
            .devices
            .iter()
            .map(|d| d.report.as_ref().unwrap().wall)
            .collect();
        assert_eq!(report.wall, walls[0].max(walls[1]));
    }

    #[test]
    fn cache_affinity_sticks_to_the_warm_device() {
        let report = FleetRun::new(heterogeneous_fleet(2), &config(), &[tiny_lc()])
            .unwrap()
            .dispatch_policy(DispatchPolicy::CacheAffinity)
            .run()
            .unwrap();
        // One service: the first query warms gpu-0, every later query
        // prefers it; gpu-1 never runs.
        assert_eq!(report.devices[0].queries, 24);
        assert_eq!(report.devices[1].queries, 0);
        assert!(report.devices[1].report.is_none());
        assert_eq!(report.devices[1].utilization(), 0.0);
    }

    #[test]
    fn dispatch_latency_shifts_latencies_by_a_constant() {
        let cfg = config();
        let hop = SimTime::from_millis(2);
        let base = FleetRun::new(heterogeneous_fleet(1), &cfg, &[tiny_lc()])
            .unwrap()
            .run()
            .unwrap();
        let shifted = FleetRun::new(heterogeneous_fleet(1), &cfg, &[tiny_lc()])
            .unwrap()
            .dispatch_model(DispatchModel::constant(hop))
            .run()
            .unwrap();
        // The device schedule translates in time, so device-relative
        // latencies are unchanged and end-to-end adds exactly the hop.
        let dev_base = base.devices[0].report.as_ref().unwrap();
        let dev_shifted = shifted.devices[0].report.as_ref().unwrap();
        assert_eq!(dev_base.query_latencies(), dev_shifted.query_latencies());
        assert_eq!(
            shifted.mean_latency().unwrap(),
            base.mean_latency().unwrap() + hop
        );
        assert_eq!(
            shifted.p99_latency().unwrap(),
            base.p99_latency().unwrap() + hop
        );
        // Violations are judged against the original target: the device
        // budget shrank by the hop.
        let target = cfg.qos_target;
        let expect: usize = dev_base
            .query_latencies()
            .iter()
            .filter(|&&l| l + hop > target)
            .count();
        assert_eq!(shifted.qos_violations(), expect);
    }

    #[test]
    fn dispatch_latency_must_leave_qos_budget() {
        let cfg = config();
        let err = FleetRun::new(heterogeneous_fleet(1), &cfg, &[tiny_lc()])
            .unwrap()
            .dispatch_model(DispatchModel::constant(cfg.qos_target))
            .run()
            .unwrap_err();
        assert!(matches!(err, TackerError::Config { .. }));
    }

    #[test]
    fn run_policies_compares_on_identical_arrivals() {
        let rows = FleetRun::new(heterogeneous_fleet(2), &config(), &[tiny_lc()])
            .unwrap()
            .run_policies(&DispatchPolicy::ALL)
            .unwrap();
        assert_eq!(rows.len(), 4);
        for (policy, report) in &rows {
            assert_eq!(report.dispatch_policy, *policy);
            assert_eq!(report.query_count(), 24);
        }
    }

    #[test]
    fn dispatcher_trace_covers_every_query() {
        let sink = Arc::new(RingSink::unbounded());
        let report = FleetRun::new(heterogeneous_fleet(2), &config(), &[tiny_lc()])
            .unwrap()
            .dispatch_policy(DispatchPolicy::LeastOutstanding)
            .traced(sink.clone())
            .run()
            .unwrap();
        let events = sink.events();
        let dispatches: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::QueryDispatched {
                    device,
                    outstanding,
                    ..
                } => Some((device.clone(), *outstanding)),
                _ => None,
            })
            .collect();
        assert_eq!(dispatches.len(), report.query_count());
        assert!(dispatches.iter().all(|(_, o)| *o >= 1));
        assert!(dispatches.iter().any(|(d, _)| &**d == "gpu-0"));
        assert_eq!(
            report.outstanding_max,
            dispatches.iter().map(|(_, o)| *o).max().unwrap()
        );
    }
}
