//! Per-kernel duration models, trained by profiling (§VI-C).
//!
//! Every kernel gets a linear-regression model mapping a scalar *work
//! feature* to duration. For Parboil-style kernels the feature is the
//! original block count; kernels whose per-block work scales with a launch
//! parameter (GEMM's `k_iters`, the benchmarks' `iters`, pooling's window)
//! fold it in multiplicatively. Profiling runs on the simulated device,
//! standing in for the paper's "historical data".

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use tacker_kernel::{KernelId, SimTime};
use tacker_predictor::KernelDurationModel;
use tacker_sim::Device;
use tacker_trace::{NoopSink, TraceEvent, TraceSink};
use tacker_workloads::WorkloadKernel;

use crate::error::TackerError;

/// Launch parameters that multiply a kernel's per-block work.
const WORK_PARAMS: [&str; 3] = ["k_iters", "iters", "win_sq"];

/// The scalar work feature of a launch: `grid × Π work-params`.
pub fn work_feature(wk: &WorkloadKernel) -> f64 {
    let mut f = wk.grid.max(1) as f64;
    for key in WORK_PARAMS {
        if let Some(v) = wk.bindings.get(key) {
            f *= (*v).max(1) as f64;
        }
    }
    f
}

/// The feature row used by the duration models: `[grid × Π work-params,
/// grid]`. The second feature captures per-block costs (launch, prologue,
/// epilogue) that do not scale with the loop knobs.
pub fn feature_row(wk: &WorkloadKernel) -> Vec<f64> {
    vec![work_feature(wk), wk.grid.max(1) as f64]
}

/// Profiles kernels on a device and serves duration predictions.
pub struct KernelProfiler {
    device: Arc<Device>,
    models: Mutex<HashMap<KernelId, KernelDurationModel>>,
    /// Exact durations of previously seen launches ("historical data",
    /// §VI-C): recurring kernels predict from history; unseen launches fall
    /// back to the LR model.
    history: Mutex<HashMap<u64, SimTime>>,
    /// When set, [`KernelProfiler::predict`] skips the exact launch
    /// history and answers from the LR models only — the serving runtime's
    /// predictor-outage fault (history keeps recording underneath, so
    /// recovery is instant).
    history_bypass: AtomicBool,
    sink: Arc<dyn TraceSink>,
    tracing: bool,
}

impl std::fmt::Debug for KernelProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelProfiler")
            .field("models", &self.model_count())
            .field("tracing", &self.tracing)
            .finish()
    }
}

impl KernelProfiler {
    /// Creates a profiler bound to a device, with tracing disabled.
    pub fn new(device: Arc<Device>) -> KernelProfiler {
        KernelProfiler::with_sink(device, Arc::new(NoopSink))
    }

    /// Creates a profiler emitting a [`TraceEvent::PredictionError`] per
    /// accuracy probe to `sink`.
    pub fn with_sink(device: Arc<Device>, sink: Arc<dyn TraceSink>) -> KernelProfiler {
        let tracing = sink.enabled();
        KernelProfiler {
            device,
            models: Mutex::new(HashMap::new()),
            history: Mutex::new(HashMap::new()),
            history_bypass: AtomicBool::new(false),
            sink,
            tracing,
        }
    }

    /// Toggles the predictor-outage mode: while on, [`KernelProfiler::predict`]
    /// ignores exact launch history and falls back to the LR models.
    pub fn set_history_bypass(&self, bypass: bool) {
        self.history_bypass.store(bypass, Ordering::Relaxed);
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Measures (simulates) a launch; memoized by the device.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn measure(&self, wk: &WorkloadKernel) -> Result<SimTime, TackerError> {
        let launch = wk.launch();
        let duration = self.device.run_launch(&launch)?.duration;
        self.history
            .lock()
            .expect("history poisoned")
            .insert(launch.fingerprint(), duration);
        Ok(duration)
    }

    /// Builds (once) the duration model for this kernel definition by
    /// profiling grid and work-parameter scalings of the representative
    /// launch.
    ///
    /// # Errors
    ///
    /// Propagates simulation and fitting errors.
    pub fn ensure_model(&self, representative: &WorkloadKernel) -> Result<(), TackerError> {
        let id = representative.def.id();
        if self
            .models
            .lock()
            .expect("models poisoned")
            .contains_key(&id)
        {
            return Ok(());
        }
        let mut points: Vec<(Vec<f64>, SimTime)> = Vec::new();
        for grid_mul in [1u64, 2, 4, 8] {
            for work_mul in [1u64, 2, 4] {
                let mut wk = representative.clone();
                wk.grid = (wk.grid * grid_mul).max(1);
                if work_mul > 1 {
                    let mut scaled = false;
                    for key in WORK_PARAMS {
                        if let Some(v) = wk.bindings.get_mut(key) {
                            *v *= work_mul;
                            scaled = true;
                        }
                    }
                    if !scaled {
                        continue; // no work parameter to scale
                    }
                }
                points.push((feature_row(&wk), self.measure(&wk)?));
            }
        }
        let model = KernelDurationModel::fit_rows(representative.def.name(), &points)?;
        self.models
            .lock()
            .expect("models poisoned")
            .insert(id, model);
        Ok(())
    }

    /// Predicts the duration of a launch, profiling its kernel first if
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors.
    pub fn predict(&self, wk: &WorkloadKernel) -> Result<SimTime, TackerError> {
        if !self.history_bypass.load(Ordering::Relaxed) {
            if let Some(seen) = self
                .history
                .lock()
                .expect("history poisoned")
                .get(&wk.launch().fingerprint())
            {
                return Ok(*seen);
            }
        }
        self.ensure_model(wk)?;
        let models = self.models.lock().expect("models poisoned");
        let model = models
            .get(&wk.def.id())
            .expect("model inserted by ensure_model");
        Ok(model.predict_row(&feature_row(wk)))
    }

    /// Predicts strictly from the LR model, ignoring launch history (used
    /// by the prediction-accuracy experiments, Fig. 17).
    pub fn predict_model_only(&self, wk: &WorkloadKernel) -> Result<SimTime, TackerError> {
        self.ensure_model(wk)?;
        let models = self.models.lock().expect("models poisoned");
        let model = models
            .get(&wk.def.id())
            .expect("model inserted by ensure_model");
        Ok(model.predict_row(&feature_row(wk)))
    }

    /// Prediction error of the model against the simulated ground truth
    /// for one launch, as a relative value.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors.
    pub fn prediction_error(&self, wk: &WorkloadKernel) -> Result<f64, TackerError> {
        let predicted = self.predict_model_only(wk)?;
        let actual = self.measure(wk)?;
        let rel_error = if actual == SimTime::ZERO {
            0.0
        } else {
            (predicted.as_nanos() as f64 - actual.as_nanos() as f64).abs()
                / actual.as_nanos() as f64
        };
        if self.tracing {
            self.sink.record(TraceEvent::PredictionError {
                kernel: wk.def.name_shared(),
                predicted,
                actual,
                rel_error,
            });
        }
        Ok(rel_error)
    }

    /// Number of fitted models.
    pub fn model_count(&self) -> usize {
        self.models.lock().expect("models poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_sim::GpuSpec;
    use tacker_workloads::parboil::Benchmark;

    fn profiler() -> KernelProfiler {
        KernelProfiler::new(Arc::new(Device::new(GpuSpec::rtx2080ti())))
    }

    #[test]
    fn feature_folds_work_params() {
        let wk = &Benchmark::Sgemm.task()[0];
        // sgemm task: grid 1024, iters 8.
        assert_eq!(work_feature(wk), 1024.0 * 8.0);
    }

    #[test]
    fn predictions_track_simulation_within_a_few_percent() {
        let p = profiler();
        for b in [Benchmark::Mriq, Benchmark::Sgemm, Benchmark::Lbm] {
            // Train on the default task, validate on a 3× scaled one.
            p.ensure_model(&b.task()[0]).unwrap();
            let held = &b.task_scaled(3)[0];
            let err = p.prediction_error(held).unwrap();
            assert!(err < 0.08, "{}: error {err}", b.name());
        }
    }

    #[test]
    fn history_bypass_falls_back_to_models() {
        let p = profiler();
        let wk = &Benchmark::Sgemm.task()[0];
        let measured = p.measure(wk).unwrap();
        assert_eq!(p.predict(wk).unwrap(), measured);
        p.set_history_bypass(true);
        let model_only = p.predict_model_only(wk).unwrap();
        assert_eq!(p.predict(wk).unwrap(), model_only);
        p.set_history_bypass(false);
        assert_eq!(p.predict(wk).unwrap(), measured);
    }

    #[test]
    fn model_built_once_per_definition() {
        let p = profiler();
        let wk = &Benchmark::Fft.task()[0];
        p.predict(wk).unwrap();
        p.predict(wk).unwrap();
        assert_eq!(p.model_count(), 1);
    }
}
