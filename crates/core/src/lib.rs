//! Tacker: Tensor-CUDA Core kernel fusion with QoS-aware scheduling.
//!
//! This crate is the paper's primary contribution (HPCA 2022): a runtime
//! that co-locates latency-critical (LC) inference services with
//! best-effort (BE) applications on one GPU, exploiting the *parallelism
//! between Tensor Cores and CUDA Cores* that kernel-granularity schedulers
//! leave on the table (the "false high utilization" problem).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`profile`] — per-kernel duration models (LR over a work feature),
//!   trained by profiling on the simulated device;
//! * [`library`] — the offline fusion library: for every fusable
//!   (TC kernel, CD kernel) pair it enumerates fusion ratios, measures the
//!   candidates, keeps the best (or declines to fuse, §V-C), and fits the
//!   two-stage load-ratio duration model (§VI);
//! * [`manager`] — the online QoS-aware kernel manager (§VII): computes
//!   QoS headroom, applies Equation 8 to choose fusion, falls back to
//!   Baymax-style reordering, and handles multiple active queries
//!   (Equation 9);
//! * [`serve`] — the serving runtime and the [`ColocationRun`] builder:
//!   streaming LC arrivals (Poisson, bursty, or trace replay), endless BE
//!   task streams, end-to-end latency and BE throughput accounting;
//! * [`fleet`] — fleet-scale serving (§IV taken online): a global
//!   dispatcher routing queries over N heterogeneous devices under
//!   pluggable policies (round-robin, least-outstanding, QoS-headroom,
//!   cache-affinity), with per-device engines running concurrently on the
//!   `tacker-par` pool and merging into one [`FleetReport`];
//! * [`fault`] — deterministic fault injection (mispredictions,
//!   stragglers, BE floods, predictor outages);
//! * [`guard`] — the adaptive QoS guard: an error/pressure tracker that
//!   inflates the headroom margin and degrades fuse → reorder-only →
//!   LC-only under sustained misprediction or tail-latency pressure;
//! * [`server`] — peak-load calibration (`calibrate_peak_interarrival`);
//! * [`baselines`] — Baymax (reorder-only) and the co-running interface
//!   models used in §VIII-G;
//! * [`sweep`] — parallel (LC × BE) grid execution over the `tacker-par`
//!   work pool, with per-cell derived RNG seeds so any `--jobs` count
//!   reproduces the serial sweep exactly.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use tacker::prelude::*;
//!
//! let device = Arc::new(tacker_sim::Device::new(tacker_sim::GpuSpec::rtx2080ti()));
//! let lc = tacker_workloads::lc_service("Resnet50", &device).unwrap();
//! let be = vec![tacker_workloads::be_app("sgemm").unwrap()];
//! let config = ExperimentConfig::default();
//! let report = ColocationRun::new(&device, &config, std::slice::from_ref(&lc), &be)
//!     .unwrap()
//!     .policy(Policy::Tacker)
//!     .run()
//!     .unwrap();
//! if let Some(p99) = report.p99_latency() {
//!     println!("p99 latency: {p99}");
//! }
//! ```

pub mod baselines;
pub mod cluster;
pub mod config;
pub mod error;
pub mod fault;
pub mod fleet;
pub mod guard;
pub mod library;
pub mod manager;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod serve;
pub mod server;
pub mod sweep;

pub use cluster::{ClusterManager, DistributionReport, GpuNode};
pub use config::ExperimentConfig;
pub use error::TackerError;
pub use fault::{FaultPlan, FloodBurst, MispredictFault, OutageWindow, StragglerFault};
pub use fleet::{
    heterogeneous_fleet, DispatchModel, DispatchPolicy, FleetDeviceReport, FleetNode, FleetReport,
    FleetRun, FleetServiceReport,
};
pub use guard::{GuardConfig, GuardLevel, QosGuard};
pub use library::{FusionLibrary, PairEntry};
pub use manager::{Decision, KernelManager, Policy};
pub use metrics::{LatencyStats, DEFAULT_EXACT_LIMIT};
pub use profile::{work_feature, KernelProfiler};
pub use report::{GuardAudit, RunReport, ServiceReport, ViolationRecord};
pub use serve::{
    ArrivalSpec, ColocationRun, ServeOptions, ServiceLoad, TelemetryOptions, VIOLATION_LOG_CAP,
};
pub use sweep::{
    expected_cell_events, run_improvement_sweep, run_pair_sweep, sweep_jobs_used, SweepCell,
};

/// Convenient glob imports: the whole public experiment surface — device
/// and engine options from `tacker-sim` included — behind one `use
/// tacker::prelude::*`. Every options type here follows the same builder
/// idiom: `Default::default()` (or a named constructor) plus chained
/// `with_*` setters.
pub mod prelude {
    pub use crate::config::ExperimentConfig;
    pub use crate::fault::FaultPlan;
    pub use crate::fleet::{
        heterogeneous_fleet, DispatchModel, DispatchPolicy, FleetNode, FleetReport, FleetRun,
    };
    pub use crate::guard::{GuardConfig, GuardLevel};
    pub use crate::library::FusionLibrary;
    pub use crate::manager::Policy;
    pub use crate::metrics::LatencyStats;
    pub use crate::report::{RunReport, ServiceReport, ViolationRecord};
    pub use crate::serve::{
        ArrivalSpec, ColocationRun, ServeOptions, ServiceLoad, TelemetryOptions,
    };
    pub use crate::sweep::{
        expected_cell_events, run_improvement_sweep, run_pair_sweep, sweep_jobs_used, SweepCell,
    };
    pub use tacker_kernel::SimTime;
    pub use tacker_sim::{Device, EngineOptions, GpuSpec, KernelRun, QueueKind};
}
