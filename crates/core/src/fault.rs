//! Deterministic fault injection for the serving runtime.
//!
//! A [`FaultPlan`] describes controlled ways reality can diverge from the
//! predictor's view of it, so the [`crate::guard::QosGuard`] can be
//! exercised and benchmarked:
//!
//! * **mispredict** — a persistent duration multiplier on a seeded sample
//!   of LC kernel positions: the kernel really takes `multiplier×` its
//!   profiled duration, every launch, while the profiler's history keeps
//!   predicting the unperturbed value;
//! * **straggler** — a transient multiplier hitting a seeded fraction of
//!   individual launches (any kernel), modelling sporadic slow launches;
//! * **BE flood** — bursts of uninvited best-effort kernels executed at a
//!   given instant, outside the scheduler's budget ledger (a misbehaving
//!   co-tenant);
//! * **predictor outage** — windows during which the profiler's exact
//!   launch history is bypassed and predictions fall back to the LR
//!   models.
//!
//! All sampling is derived from the plan's seed via
//! [`tacker_par::derive_seed`], so a plan is a pure function of its
//! coordinates: the same plan perturbs the same kernels regardless of
//! execution order or policy.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tacker_kernel::SimTime;

use crate::error::TackerError;

/// Persistent duration misprediction on a sample of LC kernel positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MispredictFault {
    /// Duration multiplier applied to sampled kernels (e.g. 1.5).
    pub multiplier: f64,
    /// Fraction of (service, kernel position) slots sampled (e.g. 0.2).
    pub fraction: f64,
}

/// Transient per-launch duration multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerFault {
    /// Duration multiplier applied to sampled launches.
    pub multiplier: f64,
    /// Fraction of launches sampled.
    pub fraction: f64,
}

/// A burst of uninvited BE kernels at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodBurst {
    /// When the burst arrives.
    pub at: SimTime,
    /// How many BE kernels flood in (round-robin over the BE apps).
    pub kernels: u32,
}

/// A window during which exact launch history is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// Window start.
    pub start: SimTime,
    /// Window length.
    pub duration: SimTime,
}

impl OutageWindow {
    fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.start + self.duration
    }
}

/// A deterministic fault-injection plan (see the module docs). The
/// default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Base seed all sampling derives from.
    pub seed: u64,
    /// Persistent LC misprediction, if any.
    pub mispredict: Option<MispredictFault>,
    /// Transient stragglers, if any.
    pub straggler: Option<StragglerFault>,
    /// Uninvited BE bursts.
    pub be_floods: Vec<FloodBurst>,
    /// Predictor-unavailable windows.
    pub predictor_outages: Vec<OutageWindow>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing at all.
    pub fn is_zero(&self) -> bool {
        self.mispredict.is_none()
            && self.straggler.is_none()
            && self.be_floods.is_empty()
            && self.predictor_outages.is_empty()
    }

    /// A plan with only a misprediction fault (the acceptance scenario).
    pub fn mispredicting(multiplier: f64, fraction: f64) -> FaultPlan {
        FaultPlan {
            mispredict: Some(MispredictFault {
                multiplier,
                fraction,
            }),
            ..FaultPlan::default()
        }
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Adds a straggler fault.
    #[must_use]
    pub fn with_straggler(mut self, multiplier: f64, fraction: f64) -> FaultPlan {
        self.straggler = Some(StragglerFault {
            multiplier,
            fraction,
        });
        self
    }

    /// Adds a BE flood burst.
    #[must_use]
    pub fn with_flood(mut self, at: SimTime, kernels: u32) -> FaultPlan {
        self.be_floods.push(FloodBurst { at, kernels });
        self.be_floods.sort_by_key(|b| b.at);
        self
    }

    /// Adds a predictor-outage window.
    #[must_use]
    pub fn with_outage(mut self, start: SimTime, duration: SimTime) -> FaultPlan {
        self.predictor_outages
            .push(OutageWindow { start, duration });
        self
    }

    /// The persistent duration factor of one LC kernel position (1.0 when
    /// unsampled). Pure in `(seed, service, kernel_index)`.
    pub fn mispredict_factor(&self, service: &str, kernel_index: usize) -> f64 {
        let Some(f) = self.mispredict else { return 1.0 };
        let seed = tacker_par::derive_seed(
            self.seed,
            &["mispredict", service, &kernel_index.to_string()],
        );
        if StdRng::seed_from_u64(seed).random::<f64>() < f.fraction {
            f.multiplier
        } else {
            1.0
        }
    }

    /// The transient duration factor of the `launch_index`-th device
    /// launch (1.0 when unsampled).
    pub fn straggler_factor(&self, launch_index: u64) -> f64 {
        let Some(f) = self.straggler else { return 1.0 };
        let seed = tacker_par::derive_seed(self.seed, &["straggler", &launch_index.to_string()]);
        if StdRng::seed_from_u64(seed).random::<f64>() < f.fraction {
            f.multiplier
        } else {
            1.0
        }
    }

    /// Whether exact launch history is unavailable at `t`.
    pub fn outage_active(&self, t: SimTime) -> bool {
        self.predictor_outages.iter().any(|w| w.contains(t))
    }

    /// Parses a comma-separated plan description:
    ///
    /// * `mispredict:<mult>:<frac>` — e.g. `mispredict:1.5:0.2`
    /// * `straggler:<mult>:<frac>`
    /// * `flood:<at_ms>:<kernels>` (repeatable)
    /// * `outage:<start_ms>:<dur_ms>` (repeatable)
    /// * `seed:<n>`
    /// * `none` — the empty plan
    ///
    /// # Errors
    ///
    /// Returns [`TackerError::Config`] on any malformed clause.
    pub fn parse(s: &str) -> Result<FaultPlan, TackerError> {
        let bad = |clause: &str| TackerError::Config {
            reason: format!("bad fault clause {clause:?} (see `--faults` usage)"),
        };
        let f64_of = |clause: &str, v: &str| v.parse::<f64>().map_err(|_| bad(clause));
        let u64_of = |clause: &str, v: &str| v.parse::<u64>().map_err(|_| bad(clause));
        let mut plan = FaultPlan::default();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let parts: Vec<&str> = clause.split(':').collect();
            match parts.as_slice() {
                ["none"] => {}
                ["seed", v] => plan.seed = u64_of(clause, v)?,
                ["mispredict", m, f] => {
                    plan.mispredict = Some(MispredictFault {
                        multiplier: f64_of(clause, m)?,
                        fraction: f64_of(clause, f)?,
                    });
                }
                ["straggler", m, f] => {
                    plan.straggler = Some(StragglerFault {
                        multiplier: f64_of(clause, m)?,
                        fraction: f64_of(clause, f)?,
                    });
                }
                ["flood", at, k] => {
                    plan.be_floods.push(FloodBurst {
                        at: SimTime::from_millis(u64_of(clause, at)?),
                        kernels: u64_of(clause, k)?.try_into().map_err(|_| bad(clause))?,
                    });
                }
                ["outage", start, dur] => {
                    plan.predictor_outages.push(OutageWindow {
                        start: SimTime::from_millis(u64_of(clause, start)?),
                        duration: SimTime::from_millis(u64_of(clause, dur)?),
                    });
                }
                _ => return Err(bad(clause)),
            }
        }
        plan.be_floods.sort_by_key(|b| b.at);
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_zero() {
        assert!(FaultPlan::none().is_zero());
        assert!(!FaultPlan::mispredicting(1.5, 0.2).is_zero());
    }

    #[test]
    fn zero_plan_perturbs_nothing() {
        let p = FaultPlan::none();
        assert_eq!(p.mispredict_factor("svc", 0), 1.0);
        assert_eq!(p.straggler_factor(7), 1.0);
        assert!(!p.outage_active(SimTime::from_millis(1)));
    }

    #[test]
    fn mispredict_sampling_is_deterministic_and_proportionate() {
        let p = FaultPlan::mispredicting(1.5, 0.2).with_seed(11);
        let hits: Vec<bool> = (0..500)
            .map(|i| p.mispredict_factor("svc", i) > 1.0)
            .collect();
        let again: Vec<bool> = (0..500)
            .map(|i| p.mispredict_factor("svc", i) > 1.0)
            .collect();
        assert_eq!(hits, again, "sampling must be pure");
        let rate = hits.iter().filter(|h| **h).count() as f64 / 500.0;
        assert!((rate - 0.2).abs() < 0.07, "hit rate {rate}");
        // Different services sample independently.
        let other: Vec<bool> = (0..500)
            .map(|i| p.mispredict_factor("other", i) > 1.0)
            .collect();
        assert_ne!(hits, other);
    }

    #[test]
    fn seeds_change_the_sample() {
        let a = FaultPlan::mispredicting(2.0, 0.5).with_seed(1);
        let b = FaultPlan::mispredicting(2.0, 0.5).with_seed(2);
        let sa: Vec<bool> = (0..64).map(|i| a.mispredict_factor("s", i) > 1.0).collect();
        let sb: Vec<bool> = (0..64).map(|i| b.mispredict_factor("s", i) > 1.0).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn outage_windows_are_half_open() {
        let p = FaultPlan::none().with_outage(SimTime::from_millis(10), SimTime::from_millis(5));
        assert!(!p.outage_active(SimTime::from_millis(9)));
        assert!(p.outage_active(SimTime::from_millis(10)));
        assert!(p.outage_active(SimTime::from_millis(14)));
        assert!(!p.outage_active(SimTime::from_millis(15)));
    }

    #[test]
    fn parse_round_trips_the_acceptance_plan() {
        let p = FaultPlan::parse("mispredict:1.5:0.2,seed:9").unwrap();
        assert_eq!(p, FaultPlan::mispredicting(1.5, 0.2).with_seed(9));
        let q = FaultPlan::parse("straggler:4:0.05,flood:20:8,outage:30:10").unwrap();
        assert_eq!(q.straggler.unwrap().multiplier, 4.0);
        assert_eq!(q.be_floods[0].kernels, 8);
        assert_eq!(q.predictor_outages[0].start, SimTime::from_millis(30));
        assert!(FaultPlan::parse("none").unwrap().is_zero());
        assert!(FaultPlan::parse("").unwrap().is_zero());
        assert!(FaultPlan::parse("bogus:1").is_err());
        assert!(FaultPlan::parse("mispredict:x:0.2").is_err());
    }
}
