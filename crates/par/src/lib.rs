//! Dependency-free scoped-thread work pool with deterministic ordering.
//!
//! The evaluation pipeline is embarrassingly parallel — 6 LC services ×
//! 12 BE apps, each pair an independent deterministic simulation — but a
//! parallel sweep is only useful if it reproduces the serial sweep
//! *exactly*. This crate provides the two primitives that make that easy:
//!
//! * [`par_map`]: a fork-join map over a slice on `N` scoped threads.
//!   Workers race over a shared atomic cursor, but every result is written
//!   back to the slot of its input index, so the output order is the input
//!   order regardless of scheduling. With `jobs <= 1` it degrades to a
//!   plain serial loop (no threads spawned at all).
//! * [`derive_seed`]: a stable string-keyed seed mixer, so every run of a
//!   sweep gets its own RNG stream derived from the (pair, load, policy)
//!   tuple instead of sharing one mutable stream whose draw order would
//!   depend on scheduling.
//!
//! No work stealing, no channels, no external crates: the units of work in
//! this workspace (full co-location runs, fused-candidate measurements)
//! are milliseconds to seconds each, so a single atomic fetch-add per unit
//! is ample load balancing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the host supports, per the OS scheduler.
///
/// Falls back to 1 when the platform cannot report it.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing jobs request: `0` means "use every core".
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `jobs` scoped threads, preserving input
/// ordering in the output.
///
/// `f` receives `(index, &item)` so callers can derive per-item seeds or
/// labels without capturing mutable state. Results are written to the slot
/// of their input index; the returned vector is identical to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for any pure
/// `f`, whatever the thread interleaving.
///
/// # Panics
///
/// Propagates the first worker panic after all threads have been joined
/// (scoped threads cannot be detached mid-map).
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Each worker claims indices from the shared cursor and returns the
    // (index, result) pairs it produced; the join below writes each result
    // into its input slot, which is what makes the output order
    // deterministic.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return produced;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("par_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Maps a fallible `f` over `items` in parallel and returns the first
/// error by *input order* (not completion order), so error reporting is
/// deterministic too.
///
/// All items are still evaluated even when an early one fails — workers
/// race ahead of the join — which is acceptable because workloads here are
/// pure simulations with no side effects worth cancelling.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing item.
pub fn try_par_map<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = par_map(jobs, items, f);
    results.into_iter().collect()
}

/// Derives a per-run RNG seed from a base seed and a tuple of string /
/// integer parts (FNV-1a over the parts, then a SplitMix64 finalizer).
///
/// Sweeps seed each run from its own (pair, load, policy) coordinates so
/// runs stay independent of execution order; two sweeps over the same grid
/// at different `--jobs` produce bit-identical per-run streams.
pub fn derive_seed(base: u64, parts: &[&str]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ base;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator so ("ab","c") and ("a","bc") differ.
        h ^= 0x1f;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer: spreads low-entropy inputs over all 64 bits.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for jobs in [1, 2, 3, 4, 8, 33] {
            let par = par_map(jobs, &items, |i, x| x * 3 + i as u64);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        par_map(7, &(0..100usize).collect::<Vec<_>>(), |_, &i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let r = try_par_map(
            4,
            &items,
            |_, &x| {
                if x == 9 || x == 41 {
                    Err(x)
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(r, Err(9));
        let ok = try_par_map::<_, _, u32, _>(4, &items, |_, &x| Ok(x * 2));
        assert_eq!(ok.unwrap()[10], 20);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seed(42, &["Resnet50", "fft", "tacker"]);
        let b = derive_seed(42, &["Resnet50", "fft", "tacker"]);
        assert_eq!(a, b, "same tuple, same seed");
        assert_ne!(a, derive_seed(43, &["Resnet50", "fft", "tacker"]));
        assert_ne!(a, derive_seed(42, &["Resnet50", "fft", "baymax"]));
        assert_ne!(a, derive_seed(42, &["Resnet50", "sgemm", "tacker"]));
        // Concatenation boundaries matter.
        assert_ne!(
            derive_seed(0, &["ab", "c"]),
            derive_seed(0, &["a", "bc"]),
            "separator keeps part boundaries distinct"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(2, &[1u32, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
