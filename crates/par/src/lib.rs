//! Dependency-free work pool with deterministic ordering.
//!
//! The evaluation pipeline is embarrassingly parallel — 6 LC services ×
//! 12 BE apps, each pair an independent deterministic simulation — but a
//! parallel sweep is only useful if it reproduces the serial sweep
//! *exactly*. This crate provides the primitives that make that easy:
//!
//! * A **persistent worker pool**, started lazily on the first parallel
//!   batch and shared by the whole process (`std::thread` + an `mpsc`
//!   channel, no external crates). Sweep-scale fan-outs go through
//!   [`pool_map`] / [`pool_map_sharded`]: workers claim items off a
//!   shared cursor, every result is written back to the slot of its
//!   input index, and the caller always participates in draining its own
//!   batch — so progress never depends on pool availability and nested
//!   maps cannot deadlock. A panicking item is caught, the rest of the
//!   batch still completes, and the panic is re-raised on the caller
//!   *after* the join — the pool itself is never poisoned.
//! * [`pool_map_sharded`] additionally takes per-item **weights**
//!   (expected event counts) and claims heaviest-first, which bounds the
//!   tail of a skewed batch; weights steer scheduling only, never
//!   results, so `jobs = N` stays bit-identical to `jobs = 1`.
//! * [`par_map`] / [`try_par_map`]: the scoped fork-join map kept for
//!   one-shot callers whose items and closures borrow from the stack
//!   (the figure benchmarks); scoped threads can take non-`'static`
//!   borrows, which pool workers cannot.
//! * [`derive_seed`]: a stable string-keyed seed mixer, so every run of a
//!   sweep gets its own RNG stream derived from the (pair, load, policy)
//!   tuple instead of sharing one mutable stream whose draw order would
//!   depend on scheduling.
//!
//! Serial fallback: `jobs = 0` resolves to [`available_jobs`], a batch of
//! one item (or one resolved worker) runs inline, and a weighted batch
//! whose total expected work is below [`SERIAL_WORK_THRESHOLD_EVENTS`]
//! runs inline too — a 1-core host never pays any coordination overhead.
//! [`planned_jobs`] exposes the resolved worker count so benchmark
//! provenance can record what actually ran.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock, PoisonError};

/// Number of worker threads the host supports, per the OS scheduler.
///
/// Falls back to 1 when the platform cannot report it.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The shared `TACKER_JOBS` environment convention: an explicit request
/// (e.g. a `--jobs` flag, `Some` when given) wins, then the
/// `TACKER_JOBS` environment variable, then `0` (auto-detect every
/// core). Both spellings mean the same thing — `0` is auto — so scripts
/// can pin a fleet-wide default via the environment and still override
/// per invocation. The CLI and the benchmark binaries both resolve
/// through here; don't hand-roll the parse.
///
/// # Errors
///
/// When `TACKER_JOBS` is set but not a number.
pub fn env_jobs(requested: Option<usize>) -> Result<usize, String> {
    if let Some(jobs) = requested {
        return Ok(jobs);
    }
    match std::env::var("TACKER_JOBS") {
        Ok(v) => v
            .trim()
            .parse()
            .map_err(|_| format!("TACKER_JOBS expects a number, got `{v}`")),
        Err(_) => Ok(0),
    }
}

/// Resolves a user-facing jobs request: `0` means "use every core".
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// Expected-event totals below this run serially even when more workers
/// are allowed: dispatch and join cost tens of microseconds, which is
/// only worth paying once the batch carries at least a few milliseconds
/// of simulation (~100k events at current engine throughput).
pub const SERIAL_WORK_THRESHOLD_EVENTS: u64 = 100_000;

/// The worker count a (possibly weighted) batch will actually use:
/// `requested` resolved via [`effective_jobs`], clamped to the host's
/// cores (oversubscribing pure CPU-bound simulation only adds scheduler
/// overhead — the old per-call design shipped a 1-core "parallel" sweep
/// that was *slower* than serial for exactly this reason), capped by the
/// item count, and collapsed to 1 when `total_weight` (expected events;
/// pass `u64::MAX` when unknown) is under
/// [`SERIAL_WORK_THRESHOLD_EVENTS`]. Benchmarks record this next to the
/// requested value so shard-balance and fallback decisions stay
/// auditable.
pub fn planned_jobs(requested: usize, items: usize, total_weight: u64) -> usize {
    let jobs = effective_jobs(requested)
        .min(available_jobs())
        .min(items.max(1));
    if total_weight < SERIAL_WORK_THRESHOLD_EVENTS {
        1
    } else {
        jobs
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide persistent pool: workers block on one shared channel.
struct Pool {
    sender: mpsc::Sender<Job>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = available_jobs();
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for idx in 0..threads {
            let receiver = Arc::clone(&receiver);
            // Workers live for the process. Each job is run under
            // `catch_unwind`, so a panicking cell cannot take its worker
            // down with it; batch-level code re-raises on the caller.
            std::thread::Builder::new()
                .name(format!("tacker-par-{idx}"))
                .spawn(move || loop {
                    let job = {
                        let rx = receiver.lock().unwrap_or_else(PoisonError::into_inner);
                        rx.recv()
                    };
                    match job {
                        Ok(job) => {
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                        // Channel closed: the process is tearing down.
                        Err(_) => return,
                    }
                })
                .expect("failed to spawn tacker-par worker");
        }
        Pool { sender }
    })
}

/// One in-flight `pool_map` batch. Workers (helpers from the pool plus
/// the calling thread) claim positions in `order` off the shared cursor;
/// results land in the slot of their *input* index, so output order is
/// input order whatever the interleaving.
struct Batch<T, R, F> {
    items: Vec<T>,
    f: F,
    /// Claim order: indices into `items`; heaviest-first under sharding.
    order: Vec<u32>,
    cursor: AtomicUsize,
    finished: AtomicUsize,
    results: Mutex<Vec<Option<R>>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    complete: Mutex<bool>,
    complete_cv: Condvar,
}

impl<T, R, F> Batch<T, R, F>
where
    F: Fn(usize, &T) -> R,
{
    fn work(&self) {
        let n = self.order.len();
        loop {
            let at = self.cursor.fetch_add(1, Ordering::Relaxed);
            if at >= n {
                return;
            }
            let i = self.order[at] as usize;
            match catch_unwind(AssertUnwindSafe(|| (self.f)(i, &self.items[i]))) {
                Ok(r) => {
                    let mut slots = self.results.lock().unwrap_or_else(PoisonError::into_inner);
                    slots[i] = Some(r);
                }
                Err(payload) => {
                    // Keep the first panic (by completion order); the
                    // batch still drains so later calls see a clean pool.
                    let mut first = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
                    first.get_or_insert(payload);
                }
            }
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == n {
                let mut done = self.complete.lock().unwrap_or_else(PoisonError::into_inner);
                *done = true;
                self.complete_cv.notify_all();
            }
        }
    }
}

fn pool_map_impl<T, R, F>(jobs: usize, items: Vec<T>, weights: Option<&[u64]>, f: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "one weight per item");
    }
    let total: u64 = weights.map_or(u64::MAX, |w| {
        w.iter().fold(0u64, |acc, &x| acc.saturating_add(x))
    });
    let jobs = planned_jobs(jobs, n, total);
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    if let Some(w) = weights {
        // Heaviest-first claim order bounds the tail of a skewed batch:
        // the longest cells start earliest. Ties keep input order.
        // Scheduling only — results always join by input index.
        order.sort_by_key(|&i| (std::cmp::Reverse(w[i as usize]), i));
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let batch = Arc::new(Batch {
        items,
        f,
        order,
        cursor: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        results: Mutex::new(slots),
        panic: Mutex::new(None),
        complete: Mutex::new(false),
        complete_cv: Condvar::new(),
    });
    for _ in 0..jobs - 1 {
        let helper = Arc::clone(&batch);
        // A helper that arrives after the batch drained exits at once; a
        // failed send only happens at process teardown.
        let _ = pool().sender.send(Box::new(move || helper.work()));
    }
    // The caller always drains its own batch: progress never depends on
    // pool availability, so nested maps cannot deadlock.
    batch.work();
    {
        let mut done = batch
            .complete
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = batch
                .complete_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    if let Some(payload) = batch
        .panic
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        resume_unwind(payload);
    }
    let mut slots = batch.results.lock().unwrap_or_else(PoisonError::into_inner);
    slots
        .drain(..)
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

/// Maps `f` over owned `items` on the persistent pool, preserving input
/// ordering in the output. `jobs = 0` means every core; the caller's
/// thread always participates, so `jobs = 1` (or a single item) runs
/// inline with no pool interaction at all.
///
/// # Panics
///
/// Re-raises the first item panic on the caller after the whole batch
/// has drained; the pool stays usable for subsequent maps.
pub fn pool_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    pool_map_impl(jobs, items, None, f)
}

/// [`pool_map`] over a fallible `f`: returns the first error by *input
/// order* (not completion order), so error reporting is deterministic.
/// All items are still evaluated — workloads here are pure simulations
/// with no side effects worth cancelling.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing item.
pub fn try_pool_map<T, R, E, F>(jobs: usize, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    E: Send + 'static,
    F: Fn(usize, &T) -> Result<R, E> + Send + Sync + 'static,
{
    pool_map_impl(jobs, items, None, f).into_iter().collect()
}

/// [`pool_map`] with per-item expected-work `weights` (event counts):
/// items are claimed heaviest-first so one long cell cannot serialize
/// the tail, and a batch whose weight total is under
/// [`SERIAL_WORK_THRESHOLD_EVENTS`] runs inline. Output order and
/// content are identical to [`pool_map`] for any weights.
///
/// # Panics
///
/// Panics if `weights.len() != items.len()`; item panics re-raise as in
/// [`pool_map`].
pub fn pool_map_sharded<T, R, F>(jobs: usize, items: Vec<T>, weights: &[u64], f: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    pool_map_impl(jobs, items, Some(weights), f)
}

/// Fallible [`pool_map_sharded`]; first error by input order.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing item.
pub fn try_pool_map_sharded<T, R, E, F>(
    jobs: usize,
    items: Vec<T>,
    weights: &[u64],
    f: F,
) -> Result<Vec<R>, E>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    E: Send + 'static,
    F: Fn(usize, &T) -> Result<R, E> + Send + Sync + 'static,
{
    pool_map_impl(jobs, items, Some(weights), f)
        .into_iter()
        .collect()
}

/// Maps `f` over `items` on up to `jobs` scoped threads, preserving input
/// ordering in the output.
///
/// This is the borrowing fork-join variant: `items` and `f` may borrow
/// from the caller's stack, which the persistent pool cannot accept
/// (pool jobs must be `'static`). One-shot figure benchmarks use this;
/// the sweep hot path goes through [`pool_map_sharded`].
///
/// `f` receives `(index, &item)` so callers can derive per-item seeds or
/// labels without capturing mutable state. Results are written to the slot
/// of their input index; the returned vector is identical to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for any pure
/// `f`, whatever the thread interleaving.
///
/// # Panics
///
/// Propagates the first worker panic after all threads have been joined
/// (scoped threads cannot be detached mid-map).
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Each worker claims indices from the shared cursor and returns the
    // (index, result) pairs it produced; the join below writes each result
    // into its input slot, which is what makes the output order
    // deterministic.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return produced;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("par_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Maps a fallible `f` over `items` in parallel and returns the first
/// error by *input order* (not completion order), so error reporting is
/// deterministic too.
///
/// All items are still evaluated even when an early one fails — workers
/// race ahead of the join — which is acceptable because workloads here are
/// pure simulations with no side effects worth cancelling.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing item.
pub fn try_par_map<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = par_map(jobs, items, f);
    results.into_iter().collect()
}

/// Derives a per-run RNG seed from a base seed and a tuple of string /
/// integer parts (FNV-1a over the parts, then a SplitMix64 finalizer).
///
/// Sweeps seed each run from its own (pair, load, policy) coordinates so
/// runs stay independent of execution order; two sweeps over the same grid
/// at different `--jobs` produce bit-identical per-run streams.
pub fn derive_seed(base: u64, parts: &[&str]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ base;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator so ("ab","c") and ("a","bc") differ.
        h ^= 0x1f;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer: spreads low-entropy inputs over all 64 bits.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for jobs in [1, 2, 3, 4, 8, 33] {
            let par = par_map(jobs, &items, |i, x| x * 3 + i as u64);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        par_map(7, &(0..100usize).collect::<Vec<_>>(), |_, &i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let r = try_par_map(
            4,
            &items,
            |_, &x| {
                if x == 9 || x == 41 {
                    Err(x)
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(r, Err(9));
        let ok = try_par_map::<_, _, u32, _>(4, &items, |_, &x| Ok(x * 2));
        assert_eq!(ok.unwrap()[10], 20);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn planned_jobs_applies_caps_and_threshold() {
        // Light batches collapse to serial whatever was requested.
        assert_eq!(planned_jobs(8, 16, SERIAL_WORK_THRESHOLD_EVENTS - 1), 1);
        // Heavy batches are capped by item count and host cores.
        assert_eq!(planned_jobs(8, 3, u64::MAX), available_jobs().min(3));
        assert_eq!(planned_jobs(2, 16, u64::MAX), available_jobs().min(2));
        assert!(planned_jobs(usize::MAX, 1024, u64::MAX) <= available_jobs());
        // Empty batches resolve to one inline worker.
        assert_eq!(planned_jobs(8, 0, u64::MAX), 1);
    }

    #[test]
    fn pool_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 7 + i as u64)
            .collect();
        for jobs in [1, 2, 4, 33] {
            let par = pool_map(jobs, items.clone(), |i, x| x * 7 + i as u64);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn sharded_weights_steer_scheduling_not_results() {
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 2).collect();
        // Ascending, descending, uniform and spiky weights all produce
        // the identical output vector.
        let descending: Vec<u64> = (0..64).rev().map(|w| w + 1_000_000).collect();
        let ascending: Vec<u64> = (0..64).map(|w| w + 1_000_000).collect();
        let spiky: Vec<u64> = (0..64)
            .map(|i| if i == 17 { 50_000_000 } else { 1_000_000 })
            .collect();
        for weights in [&descending, &ascending, &spiky] {
            let out = pool_map_sharded(4, items.clone(), weights, |_, x| x * 2);
            assert_eq!(out, serial);
        }
    }

    #[test]
    fn sharded_light_batch_falls_back_to_serial() {
        // Total weight under the threshold: runs inline on the caller.
        let caller = std::thread::current().id();
        let weights = vec![10u64; 8];
        let threads = pool_map_sharded(4, (0..8u32).collect(), &weights, move |_, _| {
            std::thread::current().id()
        });
        assert!(threads.iter().all(|&t| t == caller));
    }

    #[test]
    fn try_pool_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let r = try_pool_map(4, items.clone(), |_, &x| {
            if x == 9 || x == 41 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(r, Err(9));
        let ok = try_pool_map::<_, _, u32, _>(4, items, |_, &x| Ok(x * 2));
        assert_eq!(ok.unwrap()[10], 20);
    }

    #[test]
    fn nested_pool_maps_make_progress() {
        // Outer × inner parallel maps: the caller of each batch drains
        // it itself, so even a fully busy pool cannot deadlock this.
        let out = pool_map(2, vec![10u64, 20, 30], |_, &base| {
            pool_map(2, (0..4u64).collect(), move |_, &x| base + x)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, vec![46, 86, 126]);
    }

    #[test]
    fn panicking_cell_does_not_poison_the_pool() {
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool_map(4, (0..16u32).collect(), |_, &x| {
                assert!(x != 7, "boom");
                x
            })
        }));
        assert!(boom.is_err(), "panic must reach the caller");
        // The pool keeps serving subsequent batches, and they are
        // complete and correctly ordered.
        for _ in 0..3 {
            let ok = pool_map(4, (0..64u32).collect(), |_, &x| x + 1);
            assert_eq!(ok, (1..=64u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(2, &[1u32, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seed(42, &["Resnet50", "fft", "tacker"]);
        let b = derive_seed(42, &["Resnet50", "fft", "tacker"]);
        assert_eq!(a, b, "same tuple, same seed");
        assert_ne!(a, derive_seed(43, &["Resnet50", "fft", "tacker"]));
        assert_ne!(a, derive_seed(42, &["Resnet50", "fft", "baymax"]));
        assert_ne!(a, derive_seed(42, &["Resnet50", "sgemm", "tacker"]));
        // Concatenation boundaries matter.
        assert_ne!(
            derive_seed(0, &["ab", "c"]),
            derive_seed(0, &["a", "bc"]),
            "separator keeps part boundaries distinct"
        );
    }
}
