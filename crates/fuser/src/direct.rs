//! Direct (naive) kernel fusion (§V-A, Figs. 5 and 6).
//!
//! Direct fusion merges one block of each kernel at a fixed 1:1 ratio and
//! bakes **both grid sizes into the fused source**: the grids must be known
//! before compiling, so fusing for a new input requires regenerating and
//! recompiling the kernel online (the ~900 ms JIT cost §VIII-I measures).
//! It exists as the strawman the PTB-based fuser improves on, and to
//! regenerate Fig. 3.

use std::sync::Arc;

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, KernelDef, KernelKind, KernelLaunch, ResourceUsage, SmCapacity};

use crate::barrier::{branch_needs_barrier, rewrite_sync_threads, BarrierAllocator};
use crate::error::FuseError;
use crate::rename::{prefix_bindings, prefix_params};

/// A directly fused kernel, valid only for the exact grids it was built
/// with.
#[derive(Debug, Clone)]
pub struct DirectFused {
    def: Arc<KernelDef>,
    tc_grid: u64,
    cd_grid: u64,
}

impl DirectFused {
    /// The fused definition.
    pub fn def(&self) -> &Arc<KernelDef> {
        &self.def
    }

    /// The Tensor-kernel grid baked into this fusion.
    pub fn tc_grid(&self) -> u64 {
        self.tc_grid
    }

    /// The CUDA-kernel grid baked into this fusion.
    pub fn cd_grid(&self) -> u64 {
        self.cd_grid
    }

    /// Builds the launch for the baked-in grids.
    pub fn launch(&self, tc_bindings: &Bindings, cd_bindings: &Bindings) -> KernelLaunch {
        let mut bindings = prefix_bindings(tc_bindings, "tc_");
        bindings.extend(prefix_bindings(cd_bindings, "cd_"));
        KernelLaunch::new(
            Arc::clone(&self.def),
            self.tc_grid.max(self.cd_grid),
            bindings,
        )
    }
}

/// Fuses one block of `tc` and one block of `cd` for the *specific* grids
/// `tc_grid` and `cd_grid` (Fig. 5's `mix_grid` takes the max; the smaller
/// kernel's threads idle in the excess blocks, as in Fig. 6).
///
/// # Errors
///
/// Same conditions as [`crate::fuse_flexible`], evaluated at the 1:1 ratio.
pub fn fuse_direct(
    tc: &KernelDef,
    cd: &KernelDef,
    tc_grid: u64,
    cd_grid: u64,
    sm: &SmCapacity,
) -> Result<DirectFused, FuseError> {
    if tc.kind() != KernelKind::Tensor || cd.kind() != KernelKind::Cuda {
        return Err(FuseError::KindMismatch {
            tc_kind: tc.kind().to_string(),
            cd_kind: cd.kind().to_string(),
        });
    }
    for def in [tc, cd] {
        if def.is_opaque() {
            return Err(FuseError::OpaqueSource {
                kernel: def.name().to_string(),
            });
        }
    }
    let tc_threads = tc.block_dim().total() as u32;
    let cd_threads = cd.block_dim().total() as u32;
    let threads = tc_threads as u64 + cd_threads as u64;
    if threads > 1024 {
        return Err(FuseError::TooManyThreads { threads });
    }
    let usage = ResourceUsage {
        registers_per_thread: tc
            .resources()
            .registers_per_thread
            .max(cd.resources().registers_per_thread),
        shared_mem_bytes: tc.resources().shared_mem_bytes + cd.resources().shared_mem_bytes,
        barriers: 2,
    };
    if !sm.fits(&usage, threads as u32) {
        return Err(FuseError::ResourceOverflow {
            detail: format!("{threads} threads, {usage}"),
        });
    }
    let mut barriers = BarrierAllocator::new(sm.max_barriers);
    let mut branch =
        |def: &KernelDef, prefix: &str, lo: u32, grid: u64| -> Result<Stmt, FuseError> {
            let body = prefix_params(def.body(), prefix);
            let body = if branch_needs_barrier(&body) {
                let id = barriers.alloc()?;
                rewrite_sync_threads(&body, id, def.block_dim().total() as u32).0
            } else {
                body
            };
            Ok(Stmt::ThreadRange {
                lo,
                hi: lo + def.block_dim().total() as u32,
                // The grid is a literal: this is what makes direct fusion
                // input-specific.
                body: vec![Stmt::BlockGuard {
                    limit: Expr::lit(grid),
                    body,
                }],
            })
        };
    let body = vec![
        branch(tc, "tc_", 0, tc_grid)?,
        branch(cd, "cd_", tc_threads, cd_grid)?,
    ];
    let def = tc.derive(
        format!(
            "direct_{}_{}_g{}x{}",
            tc.name(),
            cd.name(),
            tc_grid,
            cd_grid
        ),
        KernelKind::Fused,
        tacker_kernel::Dim3::x(threads as u32),
        usage,
        body,
        false,
    )?;
    Ok(DirectFused {
        def: Arc::new(def),
        tc_grid,
        cd_grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::Dim3;

    fn tc_kernel() -> KernelDef {
        KernelDef::builder("gemm", KernelKind::Tensor)
            .block_dim(Dim3::x(64))
            .resources(ResourceUsage::new(48, 2048))
            .body(vec![
                Stmt::sync_threads(),
                Stmt::compute_tc(Expr::lit(512), "mma"),
            ])
            .build()
            .unwrap()
    }

    fn cd_kernel() -> KernelDef {
        KernelDef::builder("lbm", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 1024))
            .body(vec![Stmt::compute_cd(Expr::lit(64), "stream-collide")])
            .build()
            .unwrap()
    }

    #[test]
    fn grids_are_baked_into_name_and_guards() {
        let fused = fuse_direct(&tc_kernel(), &cd_kernel(), 2, 4, &SmCapacity::TURING).unwrap();
        assert_eq!(fused.tc_grid(), 2);
        assert_eq!(fused.cd_grid(), 4);
        assert!(fused.def().name().contains("g2x4"));
        let src = tacker_kernel::source::render(fused.def());
        assert!(src.contains("if (block_pos < 2)"));
        assert!(src.contains("if (block_pos < 4)"));
        // New inputs require a new fusion: different name/definition.
        let other = fuse_direct(&tc_kernel(), &cd_kernel(), 3, 4, &SmCapacity::TURING).unwrap();
        assert_ne!(fused.def().name(), other.def().name());
    }

    #[test]
    fn fused_block_shape_matches_fig6() {
        // TC: 2 blocks × 2 warps; CD: 4 blocks × 4 warps →
        // fused: 4 blocks × 6 warps.
        let fused = fuse_direct(&tc_kernel(), &cd_kernel(), 2, 4, &SmCapacity::TURING).unwrap();
        assert_eq!(fused.def().block_dim().total(), 192);
        let launch = fused.launch(&Bindings::new(), &Bindings::new());
        assert_eq!(launch.grid_blocks, 4);
        let bp =
            tacker_kernel::lower_block(fused.def(), launch.grid_blocks, &launch.bindings).unwrap();
        assert_eq!(bp.roles.len(), 2);
        assert_eq!(bp.roles[0].warps, 2);
        assert_eq!(bp.roles[1].warps, 4);
        // TC role only covers 2 of the 4 blocks.
        assert_eq!(bp.roles[0].original_blocks, 2);
        assert_eq!(bp.roles[1].original_blocks, 4);
    }

    #[test]
    fn sync_rewritten_in_direct_fusion_too() {
        let fused = fuse_direct(&tc_kernel(), &cd_kernel(), 2, 4, &SmCapacity::TURING).unwrap();
        assert!(!fused.def().body().iter().any(Stmt::contains_sync_threads));
    }

    #[test]
    fn kind_and_resource_checks_apply() {
        assert!(matches!(
            fuse_direct(&cd_kernel(), &cd_kernel(), 1, 1, &SmCapacity::TURING),
            Err(FuseError::KindMismatch { .. })
        ));
    }
}
