//! Fuser error type.

use std::error::Error;
use std::fmt;

use tacker_kernel::KernelError;

/// Errors produced while transforming or fusing kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum FuseError {
    /// The pair is not a (Tensor, CUDA) combination.
    KindMismatch {
        /// Kind of the first kernel.
        tc_kind: String,
        /// Kind of the second kernel.
        cd_kind: String,
    },
    /// The fused block would exceed the 1024-thread block limit.
    TooManyThreads {
        /// Threads the fused block would need.
        threads: u64,
    },
    /// The fused block's resources exceed SM capacity (no block fits).
    ResourceOverflow {
        /// Human-readable description of the violated limit.
        detail: String,
    },
    /// More named barriers are required than the hardware provides.
    BarrierOverflow {
        /// Barrier ids required.
        needed: u32,
        /// Barrier ids available.
        available: u32,
    },
    /// A component kernel's block is not warp-aligned.
    Misaligned {
        /// Kernel name.
        kernel: String,
        /// Offending thread count.
        threads: u64,
    },
    /// No fusion configuration is feasible for this pair.
    NoFeasibleConfig,
    /// The kernel's source is unavailable (black-box library kernel).
    OpaqueSource {
        /// Kernel name.
        kernel: String,
    },
    /// Underlying kernel IR error.
    Kernel(KernelError),
}

impl fmt::Display for FuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseError::KindMismatch { tc_kind, cd_kind } => write!(
                f,
                "expected a (tensor, cuda) kernel pair, got ({tc_kind}, {cd_kind})"
            ),
            FuseError::TooManyThreads { threads } => {
                write!(f, "fused block needs {threads} threads (limit 1024)")
            }
            FuseError::ResourceOverflow { detail } => {
                write!(f, "fused block exceeds SM resources: {detail}")
            }
            FuseError::BarrierOverflow { needed, available } => {
                write!(
                    f,
                    "fusion needs {needed} named barriers, SM has {available}"
                )
            }
            FuseError::Misaligned { kernel, threads } => {
                write!(
                    f,
                    "kernel `{kernel}` block of {threads} threads is not warp-aligned"
                )
            }
            FuseError::NoFeasibleConfig => write!(f, "no feasible fusion configuration"),
            FuseError::OpaqueSource { kernel } => {
                write!(f, "kernel `{kernel}` is a black-box library kernel; its source is unavailable for fusion")
            }
            FuseError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl Error for FuseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FuseError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for FuseError {
    fn from(e: KernelError) -> Self {
        FuseError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(FuseError::TooManyThreads { threads: 1280 }
            .to_string()
            .contains("1280"));
        assert!(FuseError::BarrierOverflow {
            needed: 20,
            available: 16
        }
        .to_string()
        .contains("16"));
        let e = FuseError::from(KernelError::EvalOverflow { expr: "x".into() });
        assert!(std::error::Error::source(&e).is_some());
    }
}
