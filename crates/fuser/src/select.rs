//! Candidate measurement and best-of selection (§V-C).
//!
//! "We create all possible fused kernels for two kernels, measure these
//! candidates' performance and two kernels' sequential performance, and
//! choose the best one among them. If the sequential case shows the best
//! performance, we do not fuse the two kernels."
//!
//! The fuser stays independent of the simulator by taking the measurement as
//! a closure; the runtime crate supplies one backed by the simulated device.

use tacker_kernel::SimTime;

use crate::error::FuseError;
use crate::flexible::FusedKernel;

/// The outcome of offline candidate selection for one kernel pair.
#[derive(Debug, Clone)]
pub enum FusionDecision {
    /// Fuse with this candidate; `fused_duration` is its measured duration
    /// for the profiling workload.
    Fuse {
        /// The winning fused kernel.
        kernel: FusedKernel,
        /// Measured duration of the winning candidate.
        fused_duration: SimTime,
        /// Measured duration of running the pair sequentially.
        sequential_duration: SimTime,
    },
    /// Sequential execution was fastest (or nothing was feasible): do not
    /// fuse this pair.
    RunSequential {
        /// Measured duration of running the pair sequentially.
        sequential_duration: SimTime,
    },
}

impl FusionDecision {
    /// The fused kernel, if fusion won.
    pub fn fused(&self) -> Option<&FusedKernel> {
        match self {
            FusionDecision::Fuse { kernel, .. } => Some(kernel),
            FusionDecision::RunSequential { .. } => None,
        }
    }

    /// Whether fusion won.
    pub fn is_fuse(&self) -> bool {
        matches!(self, FusionDecision::Fuse { .. })
    }
}

/// Measures every candidate with `measure` and picks the fastest, falling
/// back to sequential execution when nothing beats it.
///
/// `measure` returns `None` for candidates that fail to execute (e.g. a
/// ratio that deadlocks or cannot launch); those are skipped.
///
/// # Errors
///
/// Returns [`FuseError::NoFeasibleConfig`] only when `candidates` is empty
/// *and* `sequential_duration` is zero (nothing to compare at all).
pub fn select_best<M>(
    candidates: Vec<FusedKernel>,
    sequential_duration: SimTime,
    mut measure: M,
) -> Result<FusionDecision, FuseError>
where
    M: FnMut(&FusedKernel) -> Option<SimTime>,
{
    if candidates.is_empty() && sequential_duration == SimTime::ZERO {
        return Err(FuseError::NoFeasibleConfig);
    }
    let mut best: Option<(FusedKernel, SimTime)> = None;
    for cand in candidates {
        if let Some(d) = measure(&cand) {
            match &best {
                Some((_, b)) if *b <= d => {}
                _ => best = Some((cand, d)),
            }
        }
    }
    match best {
        Some((kernel, fused_duration)) if fused_duration < sequential_duration => {
            Ok(FusionDecision::Fuse {
                kernel,
                fused_duration,
                sequential_duration,
            })
        }
        _ => Ok(FusionDecision::RunSequential {
            sequential_duration,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexible::{fuse_flexible, FusionConfig};
    use tacker_kernel::ast::{Expr, Stmt};
    use tacker_kernel::{Dim3, KernelDef, KernelKind, ResourceUsage, SmCapacity};

    fn pair() -> (KernelDef, KernelDef) {
        let tc = KernelDef::builder("g", KernelKind::Tensor)
            .block_dim(Dim3::x(64))
            .resources(ResourceUsage::new(32, 0))
            .body(vec![Stmt::compute_tc(Expr::lit(64), "mma")])
            .build()
            .unwrap();
        let cd = KernelDef::builder("c", KernelKind::Cuda)
            .block_dim(Dim3::x(64))
            .resources(ResourceUsage::new(32, 0))
            .body(vec![Stmt::compute_cd(Expr::lit(64), "fma")])
            .build()
            .unwrap();
        (tc, cd)
    }

    fn candidates() -> Vec<FusedKernel> {
        let (tc, cd) = pair();
        vec![
            fuse_flexible(&tc, &cd, FusionConfig::ONE_TO_ONE, &SmCapacity::TURING).unwrap(),
            fuse_flexible(
                &tc,
                &cd,
                FusionConfig {
                    tc_blocks: 2,
                    cd_blocks: 1,
                },
                &SmCapacity::TURING,
            )
            .unwrap(),
        ]
    }

    #[test]
    fn picks_fastest_candidate() {
        let decision = select_best(candidates(), SimTime::from_micros(100), |c| {
            Some(if c.config().tc_blocks == 2 {
                SimTime::from_micros(40)
            } else {
                SimTime::from_micros(60)
            })
        })
        .unwrap();
        let fused = decision.fused().expect("should fuse");
        assert_eq!(fused.config().tc_blocks, 2);
    }

    #[test]
    fn falls_back_to_sequential_when_fusion_loses() {
        let decision = select_best(candidates(), SimTime::from_micros(10), |_| {
            Some(SimTime::from_micros(50))
        })
        .unwrap();
        assert!(!decision.is_fuse());
    }

    #[test]
    fn failed_measurements_are_skipped() {
        let decision = select_best(candidates(), SimTime::from_micros(100), |c| {
            if c.config().tc_blocks == 2 {
                None // pretend this ratio deadlocked
            } else {
                Some(SimTime::from_micros(60))
            }
        })
        .unwrap();
        assert_eq!(decision.fused().unwrap().config().tc_blocks, 1);
    }

    #[test]
    fn all_failures_mean_sequential() {
        let decision = select_best(candidates(), SimTime::from_micros(100), |_| None).unwrap();
        assert!(!decision.is_fuse());
    }

    #[test]
    fn empty_and_zero_is_an_error() {
        assert!(matches!(
            select_best(Vec::new(), SimTime::ZERO, |_| None),
            Err(FuseError::NoFeasibleConfig)
        ));
    }
}
