//! Partial-barrier rewriting (§V-D, Fig. 9).
//!
//! Inside a fused kernel, the component kernels' `__syncthreads()` must
//! synchronize only the warps of their own branch: a block-wide barrier in
//! one branch deadlocks (the other branch's warps never arrive). The fuser
//! therefore replaces every `__syncthreads()` in a branch with
//! `asm volatile("bar.sync id, cnt")`, where `id` is a branch-private
//! hardware barrier id and `cnt` is the branch's thread count.

use tacker_kernel::ast::Stmt;

use crate::error::FuseError;

/// Allocates branch-private barrier ids.
///
/// Id 0 is reserved for genuine block-wide barriers, matching PTX
/// conventions, so branch ids start at 1.
#[derive(Debug, Clone)]
pub struct BarrierAllocator {
    next: u16,
    limit: u16,
}

impl BarrierAllocator {
    /// Creates an allocator for an SM with `max_barriers` named barriers.
    pub fn new(max_barriers: u32) -> BarrierAllocator {
        BarrierAllocator {
            next: 1,
            limit: max_barriers.min(u16::MAX as u32) as u16,
        }
    }

    /// Reserves the next barrier id.
    ///
    /// # Errors
    ///
    /// Returns [`FuseError::BarrierOverflow`] once ids are exhausted.
    pub fn alloc(&mut self) -> Result<u16, FuseError> {
        if self.next >= self.limit {
            return Err(FuseError::BarrierOverflow {
                needed: u32::from(self.next) + 1,
                available: u32::from(self.limit),
            });
        }
        let id = self.next;
        self.next += 1;
        Ok(id)
    }

    /// Ids handed out so far.
    pub fn allocated(&self) -> u32 {
        u32::from(self.next) - 1
    }
}

/// Rewrites every `__syncthreads()` in `body` into `bar.sync id, cnt` where
/// `cnt = branch_threads`. Returns the rewritten body and whether any
/// rewrite happened.
pub fn rewrite_sync_threads(body: &[Stmt], id: u16, branch_threads: u32) -> (Vec<Stmt>, bool) {
    let mut any = false;
    let out = body
        .iter()
        .map(|s| rewrite_stmt(s, id, branch_threads, &mut any))
        .collect();
    (out, any)
}

fn rewrite_stmt(stmt: &Stmt, id: u16, cnt: u32, any: &mut bool) -> Stmt {
    match stmt {
        Stmt::SyncThreads => {
            *any = true;
            Stmt::BarSync {
                id,
                count_threads: cnt,
            }
        }
        Stmt::Loop { var, count, body } => Stmt::Loop {
            var: var.clone(),
            count: count.clone(),
            body: body.iter().map(|s| rewrite_stmt(s, id, cnt, any)).collect(),
        },
        Stmt::ThreadRange { lo, hi, body } => Stmt::ThreadRange {
            lo: *lo,
            hi: *hi,
            body: body.iter().map(|s| rewrite_stmt(s, id, cnt, any)).collect(),
        },
        Stmt::BlockGuard { limit, body } => Stmt::BlockGuard {
            limit: limit.clone(),
            body: body.iter().map(|s| rewrite_stmt(s, id, cnt, any)).collect(),
        },
        Stmt::PtbLoop {
            original_blocks,
            body,
        } => Stmt::PtbLoop {
            original_blocks: original_blocks.clone(),
            body: body.iter().map(|s| rewrite_stmt(s, id, cnt, any)).collect(),
        },
        other => other.clone(),
    }
}

/// Counts distinct named barriers a body needs after rewriting (one per
/// branch that synchronizes).
pub fn branch_needs_barrier(body: &[Stmt]) -> bool {
    body.iter().any(Stmt::contains_sync_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::ast::Expr;

    #[test]
    fn allocator_hands_out_sequential_ids() {
        let mut a = BarrierAllocator::new(16);
        assert_eq!(a.alloc().unwrap(), 1);
        assert_eq!(a.alloc().unwrap(), 2);
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    fn allocator_overflows_at_limit() {
        let mut a = BarrierAllocator::new(4);
        for _ in 1..4 {
            a.alloc().unwrap();
        }
        assert!(matches!(a.alloc(), Err(FuseError::BarrierOverflow { .. })));
    }

    #[test]
    fn sync_threads_rewritten_recursively() {
        let body = vec![Stmt::loop_over(
            "k",
            Expr::lit(4),
            vec![
                Stmt::sync_threads(),
                Stmt::compute_cd(Expr::lit(1), "fma"),
                Stmt::sync_threads(),
            ],
        )];
        let (out, any) = rewrite_sync_threads(&body, 3, 128);
        assert!(any);
        let Stmt::Loop { body: inner, .. } = &out[0] else {
            panic!("loop expected")
        };
        assert!(matches!(
            inner[0],
            Stmt::BarSync {
                id: 3,
                count_threads: 128
            }
        ));
        assert!(matches!(inner[2], Stmt::BarSync { id: 3, .. }));
        // No __syncthreads() left anywhere.
        assert!(!out.iter().any(Stmt::contains_sync_threads));
    }

    #[test]
    fn bodies_without_sync_are_unchanged() {
        let body = vec![Stmt::compute_cd(Expr::lit(1), "fma")];
        let (out, any) = rewrite_sync_threads(&body, 1, 64);
        assert!(!any);
        assert_eq!(out, body);
        assert!(!branch_needs_barrier(&body));
    }
}
