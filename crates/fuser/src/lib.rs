//! The Tensor-CUDA Core kernel fuser (§V of the paper).
//!
//! The fuser is a source-to-source compiler over the [`tacker_kernel`] AST.
//! It provides the paper's three fusion mechanisms:
//!
//! * [`ptb::to_ptb`] — the Persistent-Thread-Block transform (Fig. 7) that
//!   makes a kernel's grid size static so fusion can happen *offline*,
//!   before inputs are known;
//! * [`direct::fuse_direct`] — naive direct fusion (Fig. 5), which needs
//!   both grids up front and therefore only works online (the strawman the
//!   paper measures at ~900 ms of JIT cost);
//! * [`flexible::fuse_flexible`] — PTB-based fusion at a configurable
//!   `tc_blocks : cd_blocks` ratio (Fig. 8), with TC blocks packed first,
//!   plus [`flexible::enumerate_configs`] to generate every feasible ratio
//!   and [`select::select_best`] to pick the fastest candidate (or decline
//!   to fuse when sequential execution wins, §V-C).
//!
//! Block-wide `__syncthreads()` inside a fused branch would deadlock; the
//! fuser rewrites every one into a partial `bar.sync id, cnt` barrier with a
//! branch-private id ([`barrier`], Fig. 9).

pub mod barrier;
pub mod direct;
pub mod error;
pub mod flexible;
pub mod ptb;
pub mod rename;
pub mod select;

pub use direct::fuse_direct;
pub use error::FuseError;
pub use flexible::{enumerate_configs, fuse_flexible, FusedKernel, FusionConfig, PackPriority};
pub use ptb::to_ptb;
pub use select::{select_best, FusionDecision};
