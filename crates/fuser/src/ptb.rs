//! The Persistent-Thread-Block transform (§V-B, Fig. 7).
//!
//! PTB fixes a kernel's issued block count by wrapping the body in
//!
//! ```cuda
//! for (int block_pos = blockIdx.x;
//!      block_pos < original_block_num;
//!      block_pos += issued_block_num) { ... }
//! ```
//!
//! so the original grid size becomes a *parameter* rather than a launch
//! dimension. With the grid static, fused kernels can be compiled offline
//! and still adapt to dynamic inputs at runtime — the property direct
//! fusion lacks.

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::KernelDef;

use crate::error::FuseError;

/// The parameter name the PTB loop reads the original grid size from.
pub const ORIGINAL_BLOCKS_PARAM: &str = "original_block_num";

/// Applies the PTB transform, producing a new definition named
/// `ptb_<name>`.
///
/// Idempotent: a definition that is already PTB is returned unchanged
/// (cloned).
///
/// # Errors
///
/// Returns [`FuseError::Misaligned`] if the block is not warp-aligned, and
/// propagates IR errors.
///
/// # Examples
///
/// ```
/// use tacker_kernel::{ast::*, Dim3, KernelDef, KernelKind, ResourceUsage};
/// let def = KernelDef::builder("cd_kernel", KernelKind::Cuda)
///     .block_dim(Dim3::x(128))
///     .resources(ResourceUsage::new(32, 0))
///     .body(vec![Stmt::compute_cd(Expr::lit(64), "work")])
///     .build()
///     .unwrap();
/// let ptb = tacker_fuser::to_ptb(&def).unwrap();
/// assert!(ptb.is_ptb());
/// assert_eq!(ptb.name(), "ptb_cd_kernel");
/// ```
pub fn to_ptb(def: &KernelDef) -> Result<KernelDef, FuseError> {
    if def.is_ptb() {
        return Ok(def.clone());
    }
    if def.is_opaque() {
        return Err(FuseError::OpaqueSource {
            kernel: def.name().to_string(),
        });
    }
    let threads = def.block_dim().total();
    if !threads.is_multiple_of(u64::from(tacker_kernel::WARP_SIZE)) {
        return Err(FuseError::Misaligned {
            kernel: def.name().to_string(),
            threads,
        });
    }
    let body = vec![Stmt::PtbLoop {
        original_blocks: Expr::param(ORIGINAL_BLOCKS_PARAM),
        body: def.body().to_vec(),
    }];
    Ok(def.derive(
        format!("ptb_{}", def.name()),
        def.kind(),
        def.block_dim(),
        *def.resources(),
        body,
        true,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::{Bindings, Dim3, KernelKind, ResourceUsage};

    fn base() -> KernelDef {
        KernelDef::builder("k", KernelKind::Cuda)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(32, 2048))
            .param("iters")
            .body(vec![Stmt::loop_over(
                "i",
                Expr::param("iters"),
                vec![Stmt::compute_cd(Expr::lit(8), "fma")],
            )])
            .build()
            .unwrap()
    }

    #[test]
    fn transform_wraps_body_and_declares_param() {
        let ptb = to_ptb(&base()).unwrap();
        assert!(ptb.is_ptb());
        assert!(matches!(ptb.body()[0], Stmt::PtbLoop { .. }));
        assert!(ptb.params().contains(&ORIGINAL_BLOCKS_PARAM.to_string()));
        assert!(ptb.params().contains(&"iters".to_string()));
        // Resources unchanged.
        assert_eq!(ptb.resources(), base().resources());
    }

    #[test]
    fn transform_is_idempotent() {
        let once = to_ptb(&base()).unwrap();
        let twice = to_ptb(&once).unwrap();
        assert_eq!(once.name(), twice.name());
        assert_eq!(once.body(), twice.body());
    }

    #[test]
    fn misaligned_block_rejected() {
        let def = KernelDef::builder("odd", KernelKind::Cuda)
            .block_dim(Dim3::x(100))
            .body(vec![Stmt::compute_cd(Expr::lit(1), "fma")])
            .build()
            .unwrap();
        assert!(matches!(to_ptb(&def), Err(FuseError::Misaligned { .. })));
    }

    #[test]
    fn ptb_kernel_preserves_total_work() {
        // Lowering the PTB version with original_block_num = N must yield a
        // role covering N original blocks.
        let ptb = to_ptb(&base()).unwrap();
        let mut b = Bindings::new();
        b.insert("iters".into(), 4);
        b.insert(ORIGINAL_BLOCKS_PARAM.into(), 777);
        let bp = tacker_kernel::lower_block(&ptb, 68, &b).unwrap();
        assert_eq!(bp.roles[0].original_blocks, 777);
        // Per-iteration work identical to the original kernel's block work.
        let orig_bp = tacker_kernel::lower_block(&base(), 777, &b).unwrap();
        assert_eq!(
            bp.roles[0]
                .program
                .total_compute(tacker_kernel::ComputeUnit::Cuda),
            orig_bp.roles[0]
                .program
                .total_compute(tacker_kernel::ComputeUnit::Cuda)
        );
    }

    #[test]
    fn rendered_source_matches_fig7() {
        let ptb = to_ptb(&base()).unwrap();
        let src = tacker_kernel::source::render(&ptb);
        assert!(src.contains("block_pos += issued_block_num"));
        assert!(src.contains("block_pos < original_block_num"));
    }
}
