//! Flexible PTB-based kernel fusion (§V-B/§V-C, Figs. 6 and 8).
//!
//! A fused block packs `tc_blocks` copies of the Tensor-Core kernel's block
//! and `cd_blocks` copies of the CUDA-Core kernel's block side by side as
//! thread ranges. Each copy carries its own persistent-thread-block loop, so
//! the fused kernel is compiled once offline and adapts to any input grid at
//! runtime through the `tc_original_block_num` / `cd_original_block_num`
//! launch parameters.
//!
//! TC copies are packed first (the paper prioritizes Tensor-Core throughput);
//! CD copies fill the remaining resources. [`enumerate_configs`] yields every
//! feasible `(tc_blocks, cd_blocks)` ratio so the selection stage (§V-C) can
//! measure all candidates and keep the best.

use std::fmt;
use std::sync::Arc;

use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{
    Bindings, KernelDef, KernelKind, KernelLaunch, ResourceUsage, SmCapacity, WARP_SIZE,
};

use crate::barrier::{branch_needs_barrier, rewrite_sync_threads, BarrierAllocator};
use crate::error::FuseError;
use crate::rename::{prefix_bindings, prefix_params};

/// Launch-parameter prefix for the Tensor-Core branch.
pub const TC_PREFIX: &str = "tc_";
/// Launch-parameter prefix for the CUDA-Core branch.
pub const CD_PREFIX: &str = "cd_";

/// A fusion ratio: how many component blocks of each kind one fused block
/// contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusionConfig {
    /// Tensor-kernel blocks per fused block.
    pub tc_blocks: u32,
    /// CUDA-kernel blocks per fused block.
    pub cd_blocks: u32,
}

impl FusionConfig {
    /// The naive 1:1 ratio.
    pub const ONE_TO_ONE: FusionConfig = FusionConfig {
        tc_blocks: 1,
        cd_blocks: 1,
    };
}

impl fmt::Display for FusionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}tc:{}cd", self.tc_blocks, self.cd_blocks)
    }
}

/// Which component's blocks get packed first when enumerating ratios
/// (ablation knob; the paper packs Tensor blocks first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackPriority {
    /// Pack Tensor-Core blocks first (the paper's choice).
    #[default]
    TensorFirst,
    /// Pack CUDA-Core blocks first.
    CudaFirst,
}

/// A statically fused Tensor+CUDA kernel, ready to be launched with any
/// input grids.
#[derive(Debug, Clone)]
pub struct FusedKernel {
    def: Arc<KernelDef>,
    config: FusionConfig,
    tc_name: String,
    cd_name: String,
}

impl FusedKernel {
    /// The fused kernel definition (kind [`KernelKind::Fused`], PTB form).
    pub fn def(&self) -> &Arc<KernelDef> {
        &self.def
    }

    /// The fusion ratio.
    pub fn config(&self) -> FusionConfig {
        self.config
    }

    /// Name of the Tensor component kernel.
    pub fn tc_name(&self) -> &str {
        &self.tc_name
    }

    /// Name of the CUDA component kernel.
    pub fn cd_name(&self) -> &str {
        &self.cd_name
    }

    /// Builds a launch of the fused kernel covering `tc_grid` original
    /// Tensor-kernel blocks and `cd_grid` original CUDA-kernel blocks, with
    /// each component's own parameter bindings.
    pub fn launch(
        &self,
        tc_grid: u64,
        cd_grid: u64,
        tc_bindings: &Bindings,
        cd_bindings: &Bindings,
    ) -> KernelLaunch {
        let mut bindings = prefix_bindings(tc_bindings, TC_PREFIX);
        bindings.extend(prefix_bindings(cd_bindings, CD_PREFIX));
        bindings.insert(format!("{TC_PREFIX}original_block_num"), tc_grid);
        bindings.insert(format!("{CD_PREFIX}original_block_num"), cd_grid);
        // The issued grid is capped by occupancy in plan construction; the
        // nominal grid is the widest per-copy work count so tiny inputs are
        // not over-issued.
        let nominal = tc_grid
            .div_ceil(self.config.tc_blocks as u64)
            .max(cd_grid.div_ceil(self.config.cd_blocks as u64))
            .max(1);
        KernelLaunch::new(Arc::clone(&self.def), nominal, bindings)
    }
}

/// Extracts the fusable inner body of a definition: PTB kernels contribute
/// the body inside their PTB loop, plain kernels their whole body.
fn inner_body(def: &KernelDef) -> &[Stmt] {
    match def.body() {
        [Stmt::PtbLoop { body, .. }] => body,
        body => body,
    }
}

/// Builds one branch (thread range) of the fused kernel: copy `idx` of
/// `copies` for the component with the given prefix.
fn build_branch(
    def: &KernelDef,
    prefix: &str,
    idx: u32,
    copies: u32,
    thread_lo: u32,
    barriers: &mut BarrierAllocator,
) -> Result<Stmt, FuseError> {
    let threads = def.block_dim().total() as u32;
    let body = prefix_params(inner_body(def), prefix);
    let body = if branch_needs_barrier(&body) {
        let id = barriers.alloc()?;
        rewrite_sync_threads(&body, id, threads).0
    } else {
        body
    };
    // Copy `idx` covers original block positions congruent to idx mod
    // copies: floor((orig + copies - 1 - idx) / copies) of them.
    let orig = Expr::param(format!("{prefix}original_block_num"));
    let share = orig
        .add(Expr::lit((copies - 1 - idx) as u64))
        .floor_div(Expr::lit(copies as u64));
    Ok(Stmt::ThreadRange {
        lo: thread_lo,
        hi: thread_lo + threads,
        body: vec![Stmt::PtbLoop {
            original_blocks: share,
            body,
        }],
    })
}

/// Checks a config's feasibility and returns the fused block's resource
/// usage and thread count.
fn config_footprint(
    tc: &KernelDef,
    cd: &KernelDef,
    config: FusionConfig,
    sm: &SmCapacity,
) -> Result<(ResourceUsage, u32), FuseError> {
    if config.tc_blocks == 0 || config.cd_blocks == 0 {
        return Err(FuseError::NoFeasibleConfig);
    }
    let tc_threads = tc.block_dim().total() as u32;
    let cd_threads = cd.block_dim().total() as u32;
    for (def, t) in [(tc, tc_threads), (cd, cd_threads)] {
        if t % WARP_SIZE != 0 {
            return Err(FuseError::Misaligned {
                kernel: def.name().to_string(),
                threads: t as u64,
            });
        }
    }
    let threads =
        config.tc_blocks as u64 * tc_threads as u64 + config.cd_blocks as u64 * cd_threads as u64;
    if threads > 1024 {
        return Err(FuseError::TooManyThreads { threads });
    }
    let tc_barriers = if branch_needs_barrier(inner_body(tc)) {
        config.tc_blocks
    } else {
        0
    };
    let cd_barriers = if branch_needs_barrier(inner_body(cd)) {
        config.cd_blocks
    } else {
        0
    };
    let needed_barriers = tc_barriers + cd_barriers;
    if needed_barriers + 1 > sm.max_barriers {
        return Err(FuseError::BarrierOverflow {
            needed: needed_barriers + 1,
            available: sm.max_barriers,
        });
    }
    let usage = ResourceUsage {
        registers_per_thread: tc
            .resources()
            .registers_per_thread
            .max(cd.resources().registers_per_thread),
        shared_mem_bytes: tc.resources().shared_mem_bytes * config.tc_blocks as u64
            + cd.resources().shared_mem_bytes * config.cd_blocks as u64,
        barriers: needed_barriers.max(1),
    };
    if !sm.fits(&usage, threads as u32) {
        return Err(FuseError::ResourceOverflow {
            detail: format!("{} threads, {} at ratio {config}", threads, usage),
        });
    }
    Ok((usage, threads as u32))
}

/// Fuses a Tensor-Core kernel and a CUDA-Core kernel at the given ratio.
///
/// Both inputs may be plain or already PTB-transformed definitions; the
/// fused kernel is always PTB. The component kernels' `__syncthreads()` are
/// rewritten to branch-private `bar.sync` barriers.
///
/// ```
/// use tacker_fuser::{fuse_flexible, FusionConfig};
/// use tacker_kernel::{ast::*, Dim3, KernelDef, KernelKind, ResourceUsage, SmCapacity};
///
/// # fn main() -> Result<(), tacker_fuser::FuseError> {
/// let tc = KernelDef::builder("mma", KernelKind::Tensor)
///     .block_dim(Dim3::x(64))
///     .body(vec![Stmt::compute_tc(Expr::lit(256), "wmma::mma_sync")])
///     .build().expect("valid");
/// let cd = KernelDef::builder("fma", KernelKind::Cuda)
///     .block_dim(Dim3::x(64))
///     .body(vec![Stmt::compute_cd(Expr::lit(64), "fma chain")])
///     .build().expect("valid");
/// let fused = fuse_flexible(&tc, &cd, FusionConfig::ONE_TO_ONE, &SmCapacity::TURING)?;
/// assert_eq!(fused.def().block_dim().total(), 128);
/// // Launch it for any pair of input grids — the fusion was compiled once.
/// let launch = fused.launch(1000, 500, &Default::default(), &Default::default());
/// assert_eq!(launch.bindings["tc_original_block_num"], 1000);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`FuseError::KindMismatch`] unless `tc` is a Tensor kernel and `cd` a
///   CUDA kernel;
/// * [`FuseError::TooManyThreads`] / [`FuseError::ResourceOverflow`] /
///   [`FuseError::BarrierOverflow`] when the ratio does not fit;
/// * [`FuseError::Misaligned`] for non-warp-multiple blocks.
pub fn fuse_flexible(
    tc: &KernelDef,
    cd: &KernelDef,
    config: FusionConfig,
    sm: &SmCapacity,
) -> Result<FusedKernel, FuseError> {
    if tc.kind() != KernelKind::Tensor || cd.kind() != KernelKind::Cuda {
        return Err(FuseError::KindMismatch {
            tc_kind: tc.kind().to_string(),
            cd_kind: cd.kind().to_string(),
        });
    }
    for def in [tc, cd] {
        if def.is_opaque() {
            return Err(FuseError::OpaqueSource {
                kernel: def.name().to_string(),
            });
        }
    }
    let (usage, threads) = config_footprint(tc, cd, config, sm)?;
    let mut barriers = BarrierAllocator::new(sm.max_barriers);
    let mut body = Vec::new();
    let mut cursor = 0u32;
    for i in 0..config.tc_blocks {
        let branch = build_branch(tc, TC_PREFIX, i, config.tc_blocks, cursor, &mut barriers)?;
        cursor += tc.block_dim().total() as u32;
        body.push(branch);
    }
    for i in 0..config.cd_blocks {
        let branch = build_branch(cd, CD_PREFIX, i, config.cd_blocks, cursor, &mut barriers)?;
        cursor += cd.block_dim().total() as u32;
        body.push(branch);
    }
    debug_assert_eq!(cursor, threads);
    let name = format!(
        "fused_{}_{}_{}x{}",
        tc.name().trim_start_matches("ptb_"),
        cd.name().trim_start_matches("ptb_"),
        config.tc_blocks,
        config.cd_blocks
    );
    let def = tc.derive(
        name,
        KernelKind::Fused,
        tacker_kernel::Dim3::x(threads),
        usage,
        body,
        true,
    )?;
    Ok(FusedKernel {
        def: Arc::new(def),
        config,
        tc_name: tc.name().trim_start_matches("ptb_").to_string(),
        cd_name: cd.name().trim_start_matches("ptb_").to_string(),
    })
}

/// Enumerates every feasible fusion ratio for the pair on the given SM.
///
/// With [`PackPriority::TensorFirst`] the list is ordered by descending
/// `tc_blocks` then descending `cd_blocks` (the paper's packing); with
/// [`PackPriority::CudaFirst`] the converse.
pub fn enumerate_configs(
    tc: &KernelDef,
    cd: &KernelDef,
    sm: &SmCapacity,
    priority: PackPriority,
) -> Vec<FusionConfig> {
    let tc_threads = (tc.block_dim().total() as u32).max(1);
    let cd_threads = (cd.block_dim().total() as u32).max(1);
    let max_tc = (1024 / tc_threads).clamp(1, 8);
    let max_cd = (1024 / cd_threads).clamp(1, 8);
    let mut out = Vec::new();
    for a in (1..=max_tc).rev() {
        for b in (1..=max_cd).rev() {
            let config = FusionConfig {
                tc_blocks: a,
                cd_blocks: b,
            };
            if config_footprint(tc, cd, config, sm).is_ok() {
                out.push(config);
            }
        }
    }
    match priority {
        PackPriority::TensorFirst => {
            out.sort_by(|x, y| {
                y.tc_blocks
                    .cmp(&x.tc_blocks)
                    .then(y.cd_blocks.cmp(&x.cd_blocks))
            });
        }
        PackPriority::CudaFirst => {
            out.sort_by(|x, y| {
                y.cd_blocks
                    .cmp(&x.cd_blocks)
                    .then(y.tc_blocks.cmp(&x.tc_blocks))
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacker_kernel::Dim3;

    fn tc_kernel(smem: u64) -> KernelDef {
        KernelDef::builder("gemm", KernelKind::Tensor)
            .block_dim(Dim3::x(128))
            .resources(ResourceUsage::new(48, smem))
            .param("k_iters")
            .body(vec![Stmt::loop_over(
                "k",
                Expr::param("k_iters"),
                vec![
                    Stmt::global_load("a", Expr::lit(64), 0.8),
                    Stmt::sync_threads(),
                    Stmt::compute_tc(Expr::lit(256), "wmma::mma_sync"),
                    Stmt::sync_threads(),
                ],
            )])
            .build()
            .unwrap()
    }

    fn cd_kernel(smem: u64) -> KernelDef {
        KernelDef::builder("fft", KernelKind::Cuda)
            .block_dim(Dim3::x(256))
            .resources(ResourceUsage::new(32, smem))
            .body(vec![
                Stmt::global_load("x", Expr::lit(32), 0.5),
                Stmt::compute_cd(Expr::lit(128), "butterfly"),
                Stmt::global_store("y", Expr::lit(32), 0.0),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn fuse_produces_thread_ranges_and_prefixed_params() {
        let fused = fuse_flexible(
            &tc_kernel(8192),
            &cd_kernel(4096),
            FusionConfig {
                tc_blocks: 2,
                cd_blocks: 1,
            },
            &SmCapacity::TURING,
        )
        .unwrap();
        let def = fused.def();
        assert_eq!(def.kind(), KernelKind::Fused);
        assert!(def.is_ptb());
        assert_eq!(def.block_dim().total(), 2 * 128 + 256);
        assert_eq!(def.body().len(), 3);
        assert!(def.params().iter().any(|p| p == "tc_k_iters"));
        assert!(def.params().iter().any(|p| p == "tc_original_block_num"));
        // Fused smem adds up.
        assert_eq!(def.resources().shared_mem_bytes, 2 * 8192 + 4096);
        // Registers take the max.
        assert_eq!(def.resources().registers_per_thread, 48);
    }

    #[test]
    fn sync_threads_rewritten_with_distinct_ids_per_copy() {
        let fused = fuse_flexible(
            &tc_kernel(0),
            &cd_kernel(0),
            FusionConfig {
                tc_blocks: 2,
                cd_blocks: 1,
            },
            &SmCapacity::TURING,
        )
        .unwrap();
        // No __syncthreads left.
        assert!(!fused.def().body().iter().any(Stmt::contains_sync_threads));
        // Copies use distinct bar ids (1 and 2; cd kernel has no sync).
        let src = tacker_kernel::source::render(fused.def());
        assert!(src.contains("bar.sync 1, 128"));
        assert!(src.contains("bar.sync 2, 128"));
        assert!(!src.contains("__syncthreads"));
    }

    #[test]
    fn launch_binds_grids_and_prefixes() {
        let fused = fuse_flexible(
            &tc_kernel(0),
            &cd_kernel(0),
            FusionConfig {
                tc_blocks: 2,
                cd_blocks: 1,
            },
            &SmCapacity::TURING,
        )
        .unwrap();
        let mut tc_b = Bindings::new();
        tc_b.insert("k_iters".into(), 8);
        let launch = fused.launch(1000, 400, &tc_b, &Bindings::new());
        assert_eq!(launch.bindings.get("tc_original_block_num"), Some(&1000));
        assert_eq!(launch.bindings.get("cd_original_block_num"), Some(&400));
        assert_eq!(launch.bindings.get("tc_k_iters"), Some(&8));
        assert_eq!(launch.grid_blocks, 500);
    }

    #[test]
    fn work_split_across_copies_is_exact() {
        // Lower a 2-copy fusion and check the copies' original_blocks sum to
        // the component grid for both even and odd grids.
        for grid in [10u64, 11, 1, 2, 999] {
            let fused = fuse_flexible(
                &tc_kernel(0),
                &cd_kernel(0),
                FusionConfig {
                    tc_blocks: 2,
                    cd_blocks: 1,
                },
                &SmCapacity::TURING,
            )
            .unwrap();
            let mut tcb = Bindings::new();
            tcb.insert("k_iters".into(), 4);
            let launch = fused.launch(grid, 5, &tcb, &Bindings::new());
            let bp = tacker_kernel::lower_block(fused.def(), launch.grid_blocks, &launch.bindings)
                .unwrap();
            let tc_total: u64 = bp
                .roles
                .iter()
                .filter(|r| r.name.contains("[0.."))
                .map(|r| r.original_blocks)
                .sum::<u64>()
                + bp.roles[1].original_blocks;
            // roles 0 and 1 are the two TC copies.
            let tc_sum = bp.roles[0].original_blocks + bp.roles[1].original_blocks;
            let _ = tc_total;
            assert_eq!(tc_sum, grid, "grid {grid}");
            assert_eq!(bp.roles[2].original_blocks, 5);
        }
    }

    #[test]
    fn kind_mismatch_rejected() {
        let err = fuse_flexible(
            &cd_kernel(0),
            &cd_kernel(0),
            FusionConfig::ONE_TO_ONE,
            &SmCapacity::TURING,
        )
        .unwrap_err();
        assert!(matches!(err, FuseError::KindMismatch { .. }));
    }

    #[test]
    fn resource_overflow_detected() {
        // 40 KB + 40 KB > 64 KB Turing SM.
        let err = fuse_flexible(
            &tc_kernel(40 * 1024),
            &cd_kernel(40 * 1024),
            FusionConfig::ONE_TO_ONE,
            &SmCapacity::TURING,
        )
        .unwrap_err();
        assert!(matches!(err, FuseError::ResourceOverflow { .. }));
        // ...but fits on Volta's 96 KB SM (paper §VIII-F).
        assert!(fuse_flexible(
            &tc_kernel(40 * 1024),
            &cd_kernel(40 * 1024),
            FusionConfig::ONE_TO_ONE,
            &SmCapacity::VOLTA,
        )
        .is_ok());
    }

    #[test]
    fn thread_limit_detected() {
        let err = fuse_flexible(
            &tc_kernel(0),
            &cd_kernel(0),
            FusionConfig {
                tc_blocks: 8,
                cd_blocks: 1,
            },
            &SmCapacity::TURING,
        )
        .unwrap_err();
        assert!(matches!(err, FuseError::TooManyThreads { .. }));
    }

    #[test]
    fn enumerate_lists_feasible_ratios_tensor_first() {
        let configs = enumerate_configs(
            &tc_kernel(8192),
            &cd_kernel(4096),
            &SmCapacity::TURING,
            PackPriority::TensorFirst,
        );
        assert!(!configs.is_empty());
        assert!(configs.contains(&FusionConfig::ONE_TO_ONE));
        // Ordered by descending tc_blocks.
        assert!(configs[0].tc_blocks >= configs.last().unwrap().tc_blocks);
        // All feasible.
        for c in &configs {
            assert!(
                fuse_flexible(&tc_kernel(8192), &cd_kernel(4096), *c, &SmCapacity::TURING).is_ok()
            );
        }
    }

    #[test]
    fn enumerate_cuda_first_reorders() {
        let t = tc_kernel(0);
        let c = cd_kernel(0);
        let tf = enumerate_configs(&t, &c, &SmCapacity::TURING, PackPriority::TensorFirst);
        let cf = enumerate_configs(&t, &c, &SmCapacity::TURING, PackPriority::CudaFirst);
        assert_eq!(tf.len(), cf.len());
        assert!(cf[0].cd_blocks >= tf[0].cd_blocks);
    }

    #[test]
    fn ptb_inputs_are_unwrapped() {
        let ptb_tc = crate::ptb::to_ptb(&tc_kernel(0)).unwrap();
        let ptb_cd = crate::ptb::to_ptb(&cd_kernel(0)).unwrap();
        let fused = fuse_flexible(
            &ptb_tc,
            &ptb_cd,
            FusionConfig::ONE_TO_ONE,
            &SmCapacity::TURING,
        )
        .unwrap();
        // No doubly-nested PTB loops.
        let src = tacker_kernel::source::render(fused.def());
        assert_eq!(src.matches("block_pos += issued_block_num").count(), 2);
    }
}
