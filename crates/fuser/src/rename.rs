//! AST rewriting utilities shared by the fusion transforms.
//!
//! Fusing two kernels places both bodies in one function, so their launch
//! parameters must not collide: each component's parameters are renamed with
//! a branch prefix (`tc_`, `cd_`), and the launch glue binds them with the
//! same prefixes.

use tacker_kernel::ast::{Expr, Stmt};

/// Applies `f` to every parameter name in an expression.
pub fn map_expr_params(expr: &Expr, f: &impl Fn(&str) -> String) -> Expr {
    match expr {
        Expr::Lit(v) => Expr::Lit(*v),
        Expr::BlockIdx => Expr::BlockIdx,
        Expr::Param(p) => Expr::Param(f(p)),
        Expr::Add(a, b) => Expr::Add(
            Box::new(map_expr_params(a, f)),
            Box::new(map_expr_params(b, f)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(map_expr_params(a, f)),
            Box::new(map_expr_params(b, f)),
        ),
        Expr::CeilDiv(a, b) => Expr::CeilDiv(
            Box::new(map_expr_params(a, f)),
            Box::new(map_expr_params(b, f)),
        ),
        Expr::Div(a, b) => Expr::Div(
            Box::new(map_expr_params(a, f)),
            Box::new(map_expr_params(b, f)),
        ),
    }
}

/// Applies `f` to every parameter name in a statement tree.
pub fn map_stmt_params(stmt: &Stmt, f: &impl Fn(&str) -> String) -> Stmt {
    match stmt {
        Stmt::SharedDecl { name, bytes } => Stmt::SharedDecl {
            name: name.clone(),
            bytes: *bytes,
        },
        Stmt::Loop { var, count, body } => Stmt::Loop {
            var: var.clone(),
            count: map_expr_params(count, f),
            body: body.iter().map(|s| map_stmt_params(s, f)).collect(),
        },
        Stmt::Compute {
            unit,
            ops_per_thread,
            desc,
        } => Stmt::Compute {
            unit: *unit,
            ops_per_thread: map_expr_params(ops_per_thread, f),
            desc: desc.clone(),
        },
        Stmt::MemAccess {
            dir,
            space,
            bytes_per_thread,
            locality,
            buffer,
        } => Stmt::MemAccess {
            dir: *dir,
            space: *space,
            bytes_per_thread: map_expr_params(bytes_per_thread, f),
            locality: *locality,
            buffer: buffer.clone(),
        },
        Stmt::SyncThreads => Stmt::SyncThreads,
        Stmt::BarSync { id, count_threads } => Stmt::BarSync {
            id: *id,
            count_threads: *count_threads,
        },
        Stmt::ThreadRange { lo, hi, body } => Stmt::ThreadRange {
            lo: *lo,
            hi: *hi,
            body: body.iter().map(|s| map_stmt_params(s, f)).collect(),
        },
        Stmt::BlockGuard { limit, body } => Stmt::BlockGuard {
            limit: map_expr_params(limit, f),
            body: body.iter().map(|s| map_stmt_params(s, f)).collect(),
        },
        Stmt::PtbLoop {
            original_blocks,
            body,
        } => Stmt::PtbLoop {
            original_blocks: map_expr_params(original_blocks, f),
            body: body.iter().map(|s| map_stmt_params(s, f)).collect(),
        },
    }
}

/// Prefixes every parameter name in `body` with `prefix`.
pub fn prefix_params(body: &[Stmt], prefix: &str) -> Vec<Stmt> {
    let f = |p: &str| format!("{prefix}{p}");
    body.iter().map(|s| map_stmt_params(s, &f)).collect()
}

/// Prefixes every key of a binding map (used by the launch glue so
/// component-kernel bindings line up with the renamed parameters).
pub fn prefix_bindings(
    bindings: &tacker_kernel::Bindings,
    prefix: &str,
) -> tacker_kernel::Bindings {
    bindings
        .iter()
        .map(|(k, v)| (format!("{prefix}{k}"), *v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_renames_nested_params() {
        let body = vec![Stmt::loop_over(
            "k",
            Expr::param("iters"),
            vec![Stmt::compute_cd(
                Expr::param("ops").mul(Expr::lit(2)),
                "fma",
            )],
        )];
        let renamed = prefix_params(&body, "cd_");
        let mut params = Vec::new();
        for s in &renamed {
            s.collect_params(&mut params);
        }
        assert_eq!(params, vec!["cd_iters".to_string(), "cd_ops".to_string()]);
    }

    #[test]
    fn literals_and_block_idx_untouched() {
        let e = Expr::BlockIdx.add(Expr::lit(5));
        let out = map_expr_params(&e, &|p| format!("x_{p}"));
        assert_eq!(out, e);
    }

    #[test]
    fn bindings_prefix_round_trip() {
        let mut b = tacker_kernel::Bindings::new();
        b.insert("iters".into(), 7);
        let pb = prefix_bindings(&b, "tc_");
        assert_eq!(pb.get("tc_iters"), Some(&7));
        assert_eq!(pb.len(), 1);
    }
}
