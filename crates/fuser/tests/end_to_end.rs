//! Cross-crate smoke tests: fused kernels actually execute on the simulated
//! device and deliver the paper's qualitative behaviour.

use std::sync::Arc;
use tacker_fuser::{enumerate_configs, fuse_flexible, to_ptb, FusionConfig, PackPriority};
use tacker_kernel::ast::{Expr, Stmt};
use tacker_kernel::{Bindings, Dim3, KernelDef, KernelKind, KernelLaunch, ResourceUsage};
use tacker_sim::{ExecutablePlan, GpuSpec};

fn gemm_like() -> KernelDef {
    KernelDef::builder("gemm", KernelKind::Tensor)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(64, 16 * 1024))
        .param("k_iters")
        .body(vec![
            Stmt::shared_decl("tiles", 16 * 1024),
            Stmt::loop_over(
                "k",
                Expr::param("k_iters"),
                vec![
                    Stmt::global_load("ab", Expr::lit(128), 0.9),
                    Stmt::sync_threads(),
                    Stmt::compute_tc(Expr::lit(1024), "wmma::mma_sync"),
                    Stmt::sync_threads(),
                ],
            ),
            Stmt::global_store("c", Expr::lit(128), 0.0),
        ])
        .build()
        .unwrap()
}

fn compute_cd_kernel() -> KernelDef {
    KernelDef::builder("cutcp", KernelKind::Cuda)
        .block_dim(Dim3::x(128))
        .resources(ResourceUsage::new(40, 4 * 1024))
        .param("iters")
        .body(vec![Stmt::loop_over(
            "i",
            Expr::param("iters"),
            vec![
                Stmt::global_load("atoms", Expr::lit(16), 0.85),
                Stmt::compute_cd(Expr::lit(400), "coulomb"),
            ],
        )])
        .build()
        .unwrap()
}

#[test]
fn fused_kernel_overlaps_pipelines_end_to_end() {
    let spec = GpuSpec::rtx2080ti();
    let dev = tacker_sim::Device::new(spec.clone());
    let tc = gemm_like();
    let cd = compute_cd_kernel();

    let mut tcb = Bindings::new();
    tcb.insert("k_iters".into(), 32);
    let mut cdb = Bindings::new();
    cdb.insert("iters".into(), 32);

    let tc_grid = 68 * 8;
    let cd_grid = 68 * 8;
    let tc_ptb = to_ptb(&tc).unwrap();
    let cd_ptb = to_ptb(&cd).unwrap();
    let solo_tc = dev
        .run_launch(&KernelLaunch::new(Arc::new(tc_ptb), tc_grid, tcb.clone()))
        .unwrap();
    let solo_cd = dev
        .run_launch(&KernelLaunch::new(Arc::new(cd_ptb), cd_grid, cdb.clone()))
        .unwrap();
    eprintln!("solo tc: {solo_tc}");
    eprintln!("solo cd: {solo_cd}");

    for cfg in enumerate_configs(&tc, &cd, &spec.sm, PackPriority::TensorFirst) {
        let fused = fuse_flexible(&tc, &cd, cfg, &spec.sm).unwrap();
        let launch = fused.launch(tc_grid, cd_grid, &tcb, &cdb);
        let plan = ExecutablePlan::from_launch(&spec, &launch).unwrap();
        let run = dev.run_plan(&plan).unwrap();
        eprintln!("fused {cfg}: {run} (occ {})", run.occupancy);
    }

    let fused = fuse_flexible(
        &tc,
        &cd,
        FusionConfig {
            tc_blocks: 2,
            cd_blocks: 1,
        },
        &spec.sm,
    )
    .unwrap();
    let launch = fused.launch(tc_grid, cd_grid, &tcb, &cdb);
    let plan = ExecutablePlan::from_launch(&spec, &launch).unwrap();
    let run = dev.run_plan(&plan).unwrap();
    let seq = solo_tc.duration + solo_cd.duration;
    eprintln!("fused 2:1 {} vs sequential {}", run.duration, seq);
    assert!(run.duration < seq, "fusion should beat sequential here");
}
